//===----------------------------------------------------------------------===//
// Full code-generation integration test: emit C for the Figure 4 model,
// compile it with the system C compiler against the runtime library, run
// the binary, and check that it prints logits matching the biases (the
// generated harness uses a zero input). Skipped when no compiler or the
// static libraries are not where the build puts them.
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace ace;

namespace {

bool fileExists(const std::string &Path) {
  std::ifstream F(Path);
  return F.good();
}

TEST(GeneratedCTest, CompilesAndRuns) {
  if (std::system("which cc > /dev/null 2>&1") != 0 ||
      std::system("which c++ > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system compiler";
  // Locate the build tree relative to wherever ctest runs us.
  std::string Prefix;
  bool Found = false;
  for (const char *Candidate : {"build/", "", "../", "../../"}) {
    if (fileExists(std::string(Candidate) + "src/fhe/libace_fhe.a")) {
      Prefix = Candidate;
      Found = true;
      break;
    }
  }
  if (!Found)
    GTEST_SKIP() << "runtime archives not found";
  std::string FheLib = Prefix + "src/fhe/libace_fhe.a";
  std::string SupLib = Prefix + "src/support/libace_support.a";

  onnx::Model M = nn::buildLinearInfer(3);
  Rng R(7);
  std::vector<nn::Tensor> Calib(1);
  Calib[0].Shape = {1, 84};
  Calib[0].Values.resize(84);
  for (auto &V : Calib[0].Values)
    V = static_cast<float>(R.uniformReal(-1, 1));

  driver::AceCompiler Compiler(air::CompileOptions{});
  auto Result = Compiler.compile(M, Calib);
  ASSERT_TRUE(Result.ok());

  auto P = codegen::emitC((*Result)->Program, (*Result)->State,
                          "/tmp/ace_gen.weights");
  ASSERT_TRUE(codegen::writeProgram(P, "/tmp/ace_gen").ok());

  std::string IncludeDir;
  for (const char *Candidate : {"src", "../src", "../../src"})
    if (fileExists(std::string(Candidate) + "/fhe/CApi.h"))
      IncludeDir = Candidate;
  if (IncludeDir.empty())
    GTEST_SKIP() << "source headers not found";
  std::string Cmd = "cc -c -I" + IncludeDir +
                    " /tmp/ace_gen.c -o /tmp/ace_gen.o 2> /tmp/ace_gen.err"
                    " && c++ /tmp/ace_gen.o " +
                    FheLib + " " + SupLib +
                    " -o /tmp/ace_gen_bin 2>> /tmp/ace_gen.err";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << "generated C failed to build";
  ASSERT_EQ(std::system("/tmp/ace_gen_bin > /tmp/ace_gen.out"), 0);

  // Zero input -> logits equal the biases, up to encryption noise.
  std::ifstream Out("/tmp/ace_gen.out");
  const auto &Bias = M.MainGraph.Initializers.at("output.b");
  std::string Line;
  int Checked = 0;
  while (std::getline(Out, Line)) {
    int K = -1;
    double V = 0;
    if (std::sscanf(Line.c_str(), "logit[%d] = %lf", &K, &V) == 2) {
      ASSERT_GE(K, 0);
      ASSERT_LT(K, 10);
      EXPECT_NEAR(V, Bias.Values[K], 1e-3) << Line;
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 10);
}

} // namespace
