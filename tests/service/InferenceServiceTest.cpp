//===----------------------------------------------------------------------===//
// InferenceService acceptance tests: the robustness contract of
// docs/serving.md under concurrency. Injected per-request faults -
// truncated wire bytes, a forged key fingerprint, a misrouted session id,
// a mid-request serializer fault, an expired deadline, an explicit
// cancel - must each fail ONLY their own request with the documented
// Status code, while every healthy request in the same wave completes
// bit-identical to its single-client run, at 1 and 4 pool threads. Queue
// overflow must shed load with ResourceExhausted instead of growing
// without bound, and shutdown must fail queued requests cleanly.
//===----------------------------------------------------------------------===//

#include "service/InferenceService.h"

#include "driver/AceCompiler.h"
#include "nn/ModelZoo.h"
#include "service/ServiceCApi.h"
#include "support/Crc32c.h"
#include "support/EventLog.h"
#include "support/FaultInjector.h"
#include "support/ResourceGovernor.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <thread>

using namespace ace;
using namespace ace::service;

namespace {

nn::Tensor makeInput(uint64_t Seed) {
  Rng R(Seed);
  nn::Tensor T;
  T.Shape = {1, 16};
  T.Values.resize(16);
  for (auto &V : T.Values)
    V = static_cast<float>(R.uniformReal(-1.0, 1.0));
  return T;
}

/// Compiling the MLP takes seconds, so the suite does it once and every
/// test builds services over the shared program (which is exactly the
/// compile-once-serve-many deployment shape anyway).
class InferenceServiceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    onnx::Model Model = nn::buildMlp({16, 12, 8}, 5);
    std::vector<nn::Tensor> Calibration;
    for (uint64_t I = 0; I < 4; ++I)
      Calibration.push_back(makeInput(100 + I));
    air::CompileOptions Opt;
    Opt.ToyParameters = true;
    Opt.LogScale = 45;
    Opt.LogFirstModulus = 55;
    Opt.CalibrationSamples = 4;
    Opt.Seed = 11;
    auto Result = driver::AceCompiler(Opt).compile(Model, Calibration);
    ASSERT_TRUE(Result.ok()) << Result.status().message();
    Compiled = Result.take();
  }

  static void TearDownTestSuite() { Compiled.reset(); }

  void TearDown() override {
    FaultInjector::instance().reset();
    ThreadPool::instance().setNumThreads(0);
  }

  static std::unique_ptr<driver::CompileResult> Compiled;
};

std::unique_ptr<driver::CompileResult> InferenceServiceTest::Compiled;

/// Overwrites the 4 bytes at \p Offset and re-seals the request-header
/// CRC, producing a frame that passes integrity checks but carries a
/// forged field - the shape of a correctly-transported, wrongly-routed
/// request.
void patchHeaderU32(std::vector<uint8_t> &Frame, size_t Offset,
                    uint32_t Value) {
  ASSERT_GE(Frame.size(), frame::kRequestHeaderBytes);
  std::memcpy(Frame.data() + Offset, &Value, sizeof(Value));
  uint32_t Crc = crc32c(Frame.data(), frame::kHeaderCrcOffset);
  std::memcpy(Frame.data() + frame::kHeaderCrcOffset, &Crc, sizeof(Crc));
}

void patchHeaderU64(std::vector<uint8_t> &Frame, size_t Offset,
                    uint64_t Value) {
  ASSERT_GE(Frame.size(), frame::kRequestHeaderBytes);
  std::memcpy(Frame.data() + Offset, &Value, sizeof(Value));
  uint32_t Crc = crc32c(Frame.data(), frame::kHeaderCrcOffset);
  std::memcpy(Frame.data() + frame::kHeaderCrcOffset, &Crc, sizeof(Crc));
}

/// Waits (bounded) for the dispatcher to retire every in-flight batch so
/// queue-depth assertions do not race the final InFlight decrement.
void drain(const InferenceService &Svc) {
  for (int I = 0; I < 200; ++I) {
    ServiceStats S = Svc.stats();
    if (S.QueueDepth == 0 && S.InFlight == 0)
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "service never drained: " << Svc.stats().json();
}

/// Malformed or misrouted frames must be rejected synchronously, before
/// they consume queue capacity or a worker.
TEST_F(InferenceServiceTest, MalformedFramesAreRejectedSynchronously) {
  InferenceService Svc(Compiled->Program, Compiled->State);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok()) << Sid.status().message();
  auto Frame = Svc.encryptRequest(*Sid, makeInput(1));
  ASSERT_TRUE(Frame.ok()) << Frame.status().message();

  // Empty and header-truncated requests.
  EXPECT_EQ(Svc.submit({}).status().code(), ErrorCode::DataCorrupt);
  std::vector<uint8_t> Short(Frame->begin(),
                             Frame->begin() + frame::kRequestHeaderBytes / 2);
  EXPECT_EQ(Svc.submit(Short).status().code(), ErrorCode::DataCorrupt);

  // Wrong magic.
  auto BadMagic = *Frame;
  BadMagic[0] ^= 0xFF;
  EXPECT_EQ(Svc.submit(BadMagic).status().code(), ErrorCode::DataCorrupt);

  // A bit-flipped session id fails the header CRC - corruption is
  // detected BEFORE any routing decision.
  auto FlippedSid = *Frame;
  FlippedSid[6] ^= 0x01;
  EXPECT_EQ(Svc.submit(FlippedSid).status().code(), ErrorCode::DataCorrupt);

  // A frame with no ciphertext payload at all.
  std::vector<uint8_t> HeaderOnly(Frame->begin(),
                                  Frame->begin() +
                                      frame::kRequestHeaderBytes);
  EXPECT_EQ(Svc.submit(HeaderOnly).status().code(), ErrorCode::DataCorrupt);

  // A forged fingerprint (valid CRC, wrong key) is a key mismatch.
  auto Forged = *Frame;
  patchHeaderU32(Forged, frame::kFingerprintOffset,
                 Svc.sessionKeyFingerprint(*Sid) ^ 0xDEADBEEFu);
  EXPECT_EQ(Svc.submit(Forged).status().code(), ErrorCode::KeyMissing);

  // A misrouted session id (valid CRC, other session's id) carries the
  // wrong key fingerprint for that session: same key-mismatch failure.
  auto Sid2 = Svc.openSession();
  ASSERT_TRUE(Sid2.ok());
  auto Misrouted = *Frame;
  patchHeaderU64(Misrouted, 6, *Sid2);
  EXPECT_EQ(Svc.submit(Misrouted).status().code(), ErrorCode::KeyMissing);

  // Unknown session after close.
  ASSERT_TRUE(Svc.closeSession(*Sid).ok());
  EXPECT_EQ(Svc.submit(*Frame).status().code(), ErrorCode::KeyMissing);

  // None of the rejects were admitted.
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Accepted, 0u);
  EXPECT_EQ(S.QueueDepth, 0u);
}

/// Regression for a key-seed collision: the seed derivation used to end
/// in `setup(KeySeed | 1)`, which maps an even seed and the next odd one
/// to the SAME value - consecutive sessions (2 and 3 under the default
/// params seed) generated identical keys and fingerprints, so one
/// client's frames were accepted by and decryptable under another's
/// session. Every session must draw distinct key material.
TEST_F(InferenceServiceTest, ConsecutiveSessionsGetDistinctKeys) {
  InferenceService Svc(Compiled->Program, Compiled->State);
  constexpr size_t kSessions = 8;
  std::set<uint32_t> Fingerprints;
  uint64_t FirstSid = 0, LastSid = 0;
  for (size_t I = 0; I < kSessions; ++I) {
    auto Sid = Svc.openSession();
    ASSERT_TRUE(Sid.ok()) << Sid.status().message();
    if (I == 0)
      FirstSid = *Sid;
    LastSid = *Sid;
    uint32_t Fp = Svc.sessionKeyFingerprint(*Sid);
    EXPECT_NE(Fp, 0u);
    Fingerprints.insert(Fp);
  }
  EXPECT_EQ(Fingerprints.size(), kSessions)
      << "consecutive sessions share key material";

  // Cross-acceptance really is refused: a frame encrypted under the
  // first session, re-routed to the last, is a key mismatch.
  auto Frame = Svc.encryptRequest(FirstSid, makeInput(12));
  ASSERT_TRUE(Frame.ok());
  auto Misrouted = *Frame;
  patchHeaderU64(Misrouted, 6, LastSid);
  EXPECT_EQ(Svc.submit(Misrouted).status().code(), ErrorCode::KeyMissing);
}

/// Deadline wire semantics: DeadlineSeconds=0 is EXPLICITLY unbounded and
/// must override a server default that would otherwise expire the
/// request; a sub-microsecond positive budget must clamp up to one micro
/// and expire, not truncate to "no deadline" and pick up the default.
TEST_F(InferenceServiceTest, ExplicitlyUnboundedDeadlineOverridesDefault) {
  ThreadPool::instance().setNumThreads(1);
  ServiceConfig Cfg;
  Cfg.DefaultDeadlineSeconds = 1e-6; // any request carrying none expires
  InferenceService Svc(Compiled->Program, Compiled->State, Cfg);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok());

  // Carrying no deadline (negative) picks up the server default.
  auto Defaulted = Svc.encryptRequest(*Sid, makeInput(2), /*ClientTag=*/0,
                                      /*DeadlineSeconds=*/-1.0);
  ASSERT_TRUE(Defaulted.ok());
  auto DefT = Svc.submit(*Defaulted);
  ASSERT_TRUE(DefT.ok());
  EXPECT_EQ(DefT->Result.get().Outcome.code(), ErrorCode::DeadlineExceeded);

  // An explicit 0 opts out of the default: the request runs unbounded.
  auto Unbounded = Svc.encryptRequest(*Sid, makeInput(2), /*ClientTag=*/0,
                                      /*DeadlineSeconds=*/0.0);
  ASSERT_TRUE(Unbounded.ok());
  auto UnbT = Svc.submit(*Unbounded);
  ASSERT_TRUE(UnbT.ok());
  InferenceResponse R = UnbT->Result.get();
  EXPECT_TRUE(R.Outcome.ok()) << R.Outcome.message();

  // A tiny positive budget still expires: it encodes as 1 micro, never 0.
  auto Tiny = Svc.encryptRequest(*Sid, makeInput(2), /*ClientTag=*/0,
                                 /*DeadlineSeconds=*/1e-9);
  ASSERT_TRUE(Tiny.ok());
  auto TinyT = Svc.submit(*Tiny);
  ASSERT_TRUE(TinyT.ok());
  EXPECT_EQ(TinyT->Result.get().Outcome.code(), ErrorCode::DeadlineExceeded);
}

/// The acceptance stress scenario: two sessions, a wave of healthy
/// requests plus one of every injected fault, at 1 and 4 threads. Faults
/// fail alone; healthy logits stay bit-identical to the solo run.
TEST_F(InferenceServiceTest, FaultsAreIsolatedAndHealthyRequestsBitIdentical) {
  ServiceConfig Cfg;
  Cfg.QueueCapacity = 32;
  InferenceService Svc(Compiled->Program, Compiled->State, Cfg);

  auto A = Svc.openSession();
  auto B = Svc.openSession();
  ASSERT_TRUE(A.ok() && B.ok());

  // Encrypt ONCE per session; identical request bytes make "bit-identical
  // responses" a meaningful cross-thread-count claim.
  auto FrameA = Svc.encryptRequest(*A, makeInput(7), /*ClientTag=*/0xA);
  auto FrameB = Svc.encryptRequest(*B, makeInput(8), /*ClientTag=*/0xB);
  ASSERT_TRUE(FrameA.ok() && FrameB.ok());

  // Single-client reference run per session, serial pool.
  ThreadPool::instance().setNumThreads(1);
  std::vector<double> RefA, RefB;
  for (auto *P : {&RefA, &RefB}) {
    const auto &Frame = P == &RefA ? *FrameA : *FrameB;
    uint64_t Sid = P == &RefA ? *A : *B;
    auto T = Svc.submit(Frame);
    ASSERT_TRUE(T.ok()) << T.status().message();
    InferenceResponse Resp = T->Result.get();
    ASSERT_TRUE(Resp.Outcome.ok()) << Resp.Outcome.message();
    auto Logits = Svc.decryptResponse(Sid, Resp.Bytes);
    ASSERT_TRUE(Logits.ok()) << Logits.status().message();
    *P = Logits.take();
  }

  // A poisoned frame: the serializer fault fires INSIDE this
  // encryptRequest's ciphertext save, so the payload's wire CRC is bad
  // and the worker's load must fail - after admission, mid-request.
  FaultInjector::instance().arm(FaultKind::ChecksumCorrupt, 1);
  auto Poisoned = Svc.encryptRequest(*A, makeInput(7));
  FaultInjector::instance().reset();
  ASSERT_TRUE(Poisoned.ok());

  for (size_t Threads : {1u, 4u}) {
    ThreadPool::instance().setNumThreads(Threads);
    ServiceStats Before = Svc.stats();

    // Healthy wave: two per session.
    std::vector<InferenceService::Ticket> Healthy;
    for (auto *F : {&*FrameA, &*FrameB, &*FrameA, &*FrameB}) {
      auto T = Svc.submit(*F);
      ASSERT_TRUE(T.ok()) << T.status().message();
      Healthy.push_back(std::move(*T));
    }

    // Fault 1: truncated ciphertext bytes -> DataCorrupt, asynchronously.
    std::vector<uint8_t> Truncated(
        FrameA->begin(),
        FrameA->begin() +
            static_cast<long>(frame::kRequestHeaderBytes +
                              (FrameA->size() - frame::kRequestHeaderBytes) /
                                  2));
    auto TruncT = Svc.submit(Truncated);
    ASSERT_TRUE(TruncT.ok()) << TruncT.status().message();

    // Fault 2: mid-request serializer fault -> DataCorrupt.
    auto PoisonT = Svc.submit(*Poisoned);
    ASSERT_TRUE(PoisonT.ok()) << PoisonT.status().message();

    // Fault 3: an already-expired deadline -> DeadlineExceeded.
    auto Expired = Svc.encryptRequest(*B, makeInput(8), /*ClientTag=*/0xD,
                                      /*DeadlineSeconds=*/1e-6);
    ASSERT_TRUE(Expired.ok());
    auto ExpiredT = Svc.submit(*Expired);
    ASSERT_TRUE(ExpiredT.ok()) << ExpiredT.status().message();

    // Fault 4: explicit cancellation -> Cancelled.
    auto CancelT = Svc.submit(*FrameB);
    ASSERT_TRUE(CancelT.ok()) << CancelT.status().message();
    ASSERT_TRUE(Svc.cancel(CancelT->Id).ok());

    // Every fault resolves with its own Status...
    InferenceResponse TruncR = TruncT->Result.get();
    EXPECT_EQ(TruncR.Outcome.code(), ErrorCode::DataCorrupt)
        << TruncR.Outcome.message();
    InferenceResponse PoisonR = PoisonT->Result.get();
    EXPECT_EQ(PoisonR.Outcome.code(), ErrorCode::DataCorrupt)
        << PoisonR.Outcome.message();
    InferenceResponse ExpiredR = ExpiredT->Result.get();
    EXPECT_EQ(ExpiredR.Outcome.code(), ErrorCode::DeadlineExceeded)
        << ExpiredR.Outcome.message();
    InferenceResponse CancelR = CancelT->Result.get();
    EXPECT_EQ(CancelR.Outcome.code(), ErrorCode::Cancelled)
        << CancelR.Outcome.message();

    // ...and a failure response round-trips its Status through the wire
    // frame to the client.
    auto Reconstructed = Svc.decryptResponse(*B, ExpiredR.Bytes);
    ASSERT_FALSE(Reconstructed.ok());
    EXPECT_EQ(Reconstructed.status().code(), ErrorCode::DeadlineExceeded);

    // Healthy requests are untouched: every logit vector is bit-identical
    // to the session's single-client serial run.
    for (size_t I = 0; I < Healthy.size(); ++I) {
      InferenceResponse R = Healthy[I].Result.get();
      ASSERT_TRUE(R.Outcome.ok())
          << "healthy request " << I << " at " << Threads
          << " threads: " << R.Outcome.message();
      uint64_t Sid = I % 2 == 0 ? *A : *B;
      const std::vector<double> &Ref = I % 2 == 0 ? RefA : RefB;
      auto Logits = Svc.decryptResponse(Sid, R.Bytes);
      ASSERT_TRUE(Logits.ok()) << Logits.status().message();
      ASSERT_EQ(Logits->size(), Ref.size());
      EXPECT_EQ(std::memcmp(Logits->data(), Ref.data(),
                            Ref.size() * sizeof(double)),
                0)
          << "healthy logits differ from the single-client run (request "
          << I << ", " << Threads << " threads)";
    }

    drain(Svc);
    ServiceStats After = Svc.stats();
    EXPECT_EQ(After.Accepted - Before.Accepted, 8u);
    EXPECT_EQ(After.Completed - Before.Completed, 4u);
    EXPECT_EQ(After.Failed - Before.Failed, 2u); // truncated + poisoned
    EXPECT_EQ(After.DeadlineExpired - Before.DeadlineExpired, 1u);
    EXPECT_EQ(After.Cancelled - Before.Cancelled, 1u);
    EXPECT_EQ(After.Rejected, Before.Rejected);
  }

  // Cross-session response decryption is a key mismatch, not garbage.
  auto T = Svc.submit(*FrameA);
  ASSERT_TRUE(T.ok());
  InferenceResponse R = T->Result.get();
  ASSERT_TRUE(R.Outcome.ok());
  auto Wrong = Svc.decryptResponse(*B, R.Bytes);
  ASSERT_FALSE(Wrong.ok());
  EXPECT_EQ(Wrong.status().code(), ErrorCode::KeyMissing);
}

/// Backpressure: a full queue sheds load immediately with
/// ResourceExhausted; every ADMITTED request still completes.
TEST_F(InferenceServiceTest, QueueOverflowShedsLoadWithResourceExhausted) {
  ThreadPool::instance().setNumThreads(1);
  ServiceConfig Cfg;
  Cfg.QueueCapacity = 2;
  Cfg.MaxBatch = 1;
  InferenceService Svc(Compiled->Program, Compiled->State, Cfg);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok());
  auto Frame = Svc.encryptRequest(*Sid, makeInput(3));
  ASSERT_TRUE(Frame.ok());

  // Submission is microseconds, execution is ~seconds: flooding must hit
  // the capacity wall long before the dispatcher can drain it.
  std::vector<InferenceService::Ticket> Admitted;
  bool SawOverflow = false;
  for (int I = 0; I < 32 && !SawOverflow; ++I) {
    auto T = Svc.submit(*Frame);
    if (T.ok()) {
      Admitted.push_back(std::move(*T));
      continue;
    }
    SawOverflow = true;
    EXPECT_EQ(T.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_NE(T.status().message().find("queue full"), std::string::npos)
        << T.status().message();
  }
  ASSERT_TRUE(SawOverflow) << "queue never overflowed in 32 submits";
  // The queue stayed bounded: at most capacity + one in-flight admitted.
  EXPECT_LE(Admitted.size(), Cfg.QueueCapacity + 1);

  // Load shedding degraded gracefully - everything admitted completes.
  for (auto &T : Admitted) {
    InferenceResponse R = T.Result.get();
    EXPECT_TRUE(R.Outcome.ok()) << R.Outcome.message();
  }
  drain(Svc);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Accepted, Admitted.size());
  EXPECT_GE(S.Rejected, 1u);
  EXPECT_EQ(S.Completed, Admitted.size());
  EXPECT_EQ(S.QueueDepth, 0u);
  EXPECT_GT(S.P50LatencySeconds, 0.0);
}

/// Closing a session with a request still queued fails that request with
/// KeyMissing when it reaches a worker; it cannot touch freed keys.
TEST_F(InferenceServiceTest, SessionClosedWhileQueuedFailsCleanly) {
  ThreadPool::instance().setNumThreads(1);
  ServiceConfig Cfg;
  Cfg.MaxBatch = 1;
  InferenceService Svc(Compiled->Program, Compiled->State, Cfg);
  auto A = Svc.openSession();
  auto B = Svc.openSession();
  ASSERT_TRUE(A.ok() && B.ok());
  auto FrameA = Svc.encryptRequest(*A, makeInput(4));
  auto FrameB = Svc.encryptRequest(*B, makeInput(5));
  ASSERT_TRUE(FrameA.ok() && FrameB.ok());

  // The first request occupies the dispatcher; the second is queued when
  // its session disappears.
  auto T1 = Svc.submit(*FrameA);
  auto T2 = Svc.submit(*FrameB);
  ASSERT_TRUE(T1.ok() && T2.ok());
  ASSERT_TRUE(Svc.closeSession(*B).ok());

  InferenceResponse R1 = T1->Result.get();
  EXPECT_TRUE(R1.Outcome.ok()) << R1.Outcome.message();
  InferenceResponse R2 = T2->Result.get();
  EXPECT_EQ(R2.Outcome.code(), ErrorCode::KeyMissing)
      << R2.Outcome.message();
}

/// Shutdown fails queued requests with Cancelled (never hangs their
/// futures) and refuses later submissions.
TEST_F(InferenceServiceTest, ShutdownFailsQueuedRequestsCleanly) {
  ThreadPool::instance().setNumThreads(1);
  ServiceConfig Cfg;
  Cfg.MaxBatch = 1;
  auto Svc = std::make_unique<InferenceService>(Compiled->Program,
                                               Compiled->State, Cfg);
  auto Sid = Svc->openSession();
  ASSERT_TRUE(Sid.ok());
  auto Frame = Svc->encryptRequest(*Sid, makeInput(6));
  ASSERT_TRUE(Frame.ok());

  std::vector<InferenceService::Ticket> Tickets;
  for (int I = 0; I < 3; ++I) {
    auto T = Svc->submit(*Frame);
    ASSERT_TRUE(T.ok());
    Tickets.push_back(std::move(*T));
  }
  Svc->shutdown();

  // Every future resolves: the one the dispatcher may already have been
  // running can complete; the queued remainder are Cancelled.
  size_t CancelledCount = 0;
  for (auto &T : Tickets) {
    InferenceResponse R = T.Result.get();
    if (!R.Outcome.ok()) {
      EXPECT_EQ(R.Outcome.code(), ErrorCode::Cancelled)
          << R.Outcome.message();
      ++CancelledCount;
    }
  }
  EXPECT_GE(CancelledCount, 2u);
  EXPECT_EQ(Svc->submit(*Frame).status().code(), ErrorCode::InvalidArgument);
  Svc.reset(); // double-shutdown via the destructor must be safe
}

/// Trace propagation (docs/observability.md): a client-chosen trace id
/// rides the request frame, is read back off the WIRE by the server, and
/// is echoed in the response; a zero id gets a server-assigned nonzero
/// one so every admitted request is joinable in logs.
TEST_F(InferenceServiceTest, TraceIdRoundTripsThroughWireFrames) {
  InferenceService Svc(Compiled->Program, Compiled->State);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok());

  constexpr uint64_t kChosen = 0xace0000000001234ull;
  auto Frame = Svc.encryptRequest(*Sid, makeInput(31), /*ClientTag=*/5,
                                  /*DeadlineSeconds=*/-1.0,
                                  /*TraceId=*/kChosen);
  ASSERT_TRUE(Frame.ok()) << Frame.status().message();
  // The id sits in the request header between the client tag and the
  // deadline: magic(4) + version(2) + session(8) + tag(8) = offset 22.
  uint64_t OnWire = 0;
  std::memcpy(&OnWire, Frame->data() + 22, sizeof(OnWire));
  EXPECT_EQ(OnWire, kChosen);

  auto T = Svc.submit(*Frame);
  ASSERT_TRUE(T.ok()) << T.status().message();
  InferenceResponse R = T->Result.get();
  ASSERT_TRUE(R.Outcome.ok()) << R.Outcome.message();
  EXPECT_EQ(R.TraceId, kChosen);
  // Stage latencies ride along on every completed response.
  EXPECT_GE(R.QueueSeconds, 0.0);
  EXPECT_GE(R.ExecSeconds, 0.0);
  EXPECT_TRUE(Svc.decryptResponse(*Sid, R.Bytes).ok());

  // The server reads the id off the wire, not from client-side state: a
  // proxy rewriting the header (CRC re-sealed) changes what is echoed.
  auto Rewritten = *Frame;
  patchHeaderU64(Rewritten, 22, 0x5EEDull);
  auto T2 = Svc.submit(Rewritten);
  ASSERT_TRUE(T2.ok());
  EXPECT_EQ(T2->Result.get().TraceId, 0x5EEDull);

  // No client id -> the service assigns a nonzero one.
  auto Plain = Svc.encryptRequest(*Sid, makeInput(31));
  ASSERT_TRUE(Plain.ok());
  auto T3 = Svc.submit(*Plain);
  ASSERT_TRUE(T3.ok());
  EXPECT_NE(T3->Result.get().TraceId, 0u);
}

/// Per-request attribution: with a serial pool (every FHE op runs on the
/// dispatcher thread, inside the request's scope) the response's op-count
/// delta must equal the GLOBAL counter delta bit-exactly for every
/// non-service counter - nothing leaks in or out of the attribution.
TEST_F(InferenceServiceTest, PerRequestOpCountsMatchGlobalDeltas) {
  ThreadPool::instance().setNumThreads(1);
  telemetry::Telemetry &T = telemetry::Telemetry::instance();
  T.clear();
  T.setEnabled(true);

  InferenceService Svc(Compiled->Program, Compiled->State);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok());
  auto Frame = Svc.encryptRequest(*Sid, makeInput(33));
  ASSERT_TRUE(Frame.ok());

  telemetry::CounterSnapshot Before = T.counters();
  auto Ticket = Svc.submit(*Frame);
  ASSERT_TRUE(Ticket.ok());
  InferenceResponse R = Ticket->Result.get();
  ASSERT_TRUE(R.Outcome.ok()) << R.Outcome.message();
  telemetry::CounterSnapshot After = T.counters();
  T.setEnabled(false);
  T.clear();

  telemetry::CounterSnapshot Global = After.deltaSince(Before);
  for (size_t I = 0;
       I < static_cast<size_t>(telemetry::Counter::SvcAccepted); ++I)
    EXPECT_EQ(R.OpDelta.Values[I], Global.Values[I])
        << telemetry::counterName(static_cast<telemetry::Counter>(I));
  // The request actually did FHE work (an all-zero pass would satisfy
  // the equality vacuously).
  EXPECT_GT(R.OpDelta.get(telemetry::Counter::Rotate), 0u);
  EXPECT_GT(R.OpDelta.get(telemetry::Counter::BytesDeserialized), 0u);
  // Service lifecycle counters are deliberately outside the scope: they
  // describe the service, not the request's FHE work.
  EXPECT_EQ(R.OpDelta.get(telemetry::Counter::SvcAccepted), 0u);
  EXPECT_EQ(Global.get(telemetry::Counter::SvcAccepted), 1u);
  EXPECT_EQ(Global.get(telemetry::Counter::SvcCompleted), 1u);
}

/// The slow-request path: with the threshold armed below any real
/// latency, a completed request lands in the JSONL event log carrying
/// the upgraded record (span breakdown + health snapshot).
TEST_F(InferenceServiceTest, SlowRequestEmitsUpgradedEventLogRecord) {
  ThreadPool::instance().setNumThreads(1);
  telemetry::Telemetry::instance().clear();
  telemetry::Telemetry::instance().setEnabled(true);
  std::string Path =
      ::testing::TempDir() + "/ace_service_event_log.jsonl";
  obs::EventLog &Log = obs::EventLog::instance();
  ASSERT_TRUE(Log.open(Path).ok());
  Log.setSlowThresholdSeconds(1e-9); // every completed request is "slow"

  {
    InferenceService Svc(Compiled->Program, Compiled->State);
    auto Sid = Svc.openSession();
    ASSERT_TRUE(Sid.ok());
    auto Frame = Svc.encryptRequest(*Sid, makeInput(35), /*ClientTag=*/77,
                                    /*DeadlineSeconds=*/-1.0,
                                    /*TraceId=*/0xfacef00dull);
    ASSERT_TRUE(Frame.ok());
    auto Ticket = Svc.submit(*Frame);
    ASSERT_TRUE(Ticket.ok());
    ASSERT_TRUE(Ticket->Result.get().Outcome.ok());
  }
  EXPECT_GE(Log.writtenCount(), 1u);
  Log.close();
  Log.setSlowThresholdSeconds(0.0);
  telemetry::Telemetry::instance().setEnabled(false);
  telemetry::Telemetry::instance().clear();

  std::ifstream IS(Path);
  std::string Line, Found;
  while (std::getline(IS, Line))
    if (Line.find("\"trace_id\":\"0x00000000facef00d\"") !=
        std::string::npos)
      Found = Line;
  ASSERT_FALSE(Found.empty()) << "no event-log line for the request";
  for (const char *Key :
       {"\"event\":\"request\"", "\"status\":\"ok\"", "\"client_tag\":77",
        "\"queue_s\":", "\"exec_s\":", "\"total_s\":", "\"ops\":{",
        "\"slow\":true", "\"spans\":{", "\"health\":{"})
    EXPECT_NE(Found.find(Key), std::string::npos)
        << Key << " missing in " << Found;
  std::remove(Path.c_str());
}

/// The flat C surface drives the same machinery end to end.
TEST_F(InferenceServiceTest, CApiRoundTrip) {
  const int64_t Dims[] = {8, 6, 4};
  AceService *Svc = ace_service_create_mlp(Dims, 3, /*seed=*/21,
                                           /*queue_capacity=*/4,
                                           /*default_deadline_seconds=*/0.0);
  ASSERT_NE(Svc, nullptr) << ace_last_error_message();

  uint64_t Session = ace_service_open_session(Svc);
  ASSERT_NE(Session, 0u) << ace_last_error_message();

  double Input[8];
  Rng R(9);
  for (auto &V : Input)
    V = R.uniformReal(-1.0, 1.0);
  double Logits[4] = {0, 0, 0, 0};
  size_t Count = 0;
  ASSERT_EQ(ace_service_infer(Svc, Session, Input, 8, /*deadline=*/0.0,
                              Logits, 4, &Count),
            ACE_OK)
      << ace_last_error_message();
  EXPECT_EQ(Count, 4u);

  // An impossible deadline surfaces as the dedicated C error code.
  EXPECT_EQ(ace_service_infer(Svc, Session, Input, 8, /*deadline=*/1e-6,
                              Logits, 4, &Count),
            ACE_ERR_DEADLINE_EXCEEDED);

  char *Json = ace_service_stats_json(Svc);
  ASSERT_NE(Json, nullptr);
  EXPECT_NE(std::strstr(Json, "\"accepted\""), nullptr) << Json;
  std::free(Json);

  EXPECT_EQ(ace_service_close_session(Svc, Session), ACE_OK);
  EXPECT_EQ(ace_service_open_session(nullptr), 0u); // invalid handle
  ace_service_destroy(Svc);
}

/// Session teardown must return every cached-key byte to the governor:
/// the EvalKeys gauge goes back to its pre-session value (never negative,
/// never stale) and the service-level key-cache gauge reads zero.
TEST_F(InferenceServiceTest, ClosingSessionsReleasesKeyCacheCharges) {
  size_t Baseline =
      ResourceGovernor::instance().stats().ChargedBytes[static_cast<size_t>(
          MemCategory::EvalKeys)];
  InferenceService Svc(Compiled->Program, Compiled->State);
  auto A = Svc.openSession();
  auto B = Svc.openSession();
  ASSERT_TRUE(A.ok() && B.ok());
  for (uint64_t Sid : {*A, *B}) {
    auto Frame = Svc.encryptRequest(Sid, makeInput(21));
    ASSERT_TRUE(Frame.ok());
    auto T = Svc.submit(*Frame);
    ASSERT_TRUE(T.ok());
    InferenceResponse R = T->Result.get();
    ASSERT_TRUE(R.Outcome.ok()) << R.Outcome.message();
  }
  // Lazy keygen materialized rotation keys under the governor.
  EXPECT_GT(Svc.stats().KeyCacheBytes, 0u);
  EXPECT_GT(ResourceGovernor::instance().stats().ChargedBytes
                [static_cast<size_t>(MemCategory::EvalKeys)],
            Baseline);

  ASSERT_TRUE(Svc.closeSession(*A).ok());
  ASSERT_TRUE(Svc.closeSession(*B).ok());
  EXPECT_EQ(Svc.stats().KeyCacheBytes, 0u);
  EXPECT_EQ(ResourceGovernor::instance().stats().ChargedBytes
                [static_cast<size_t>(MemCategory::EvalKeys)],
            Baseline);
}

/// A hard budget the process is already over sheds requests in-band:
/// the ticket resolves with ResourceExhausted (no crash, no hung
/// future), and raising the budget restores service on the same frame.
TEST_F(InferenceServiceTest, TightBudgetShedsRequestsInBand) {
  size_t SavedBudget = ResourceGovernor::instance().budgetBytes();
  ServiceConfig Cfg;
  Cfg.MemoryBudgetBytes = 1 << 20; // far below the session working set
  InferenceService Svc(Compiled->Program, Compiled->State, Cfg);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok()) << Sid.status().message();
  auto Frame = Svc.encryptRequest(*Sid, makeInput(22));
  ASSERT_TRUE(Frame.ok()) << Frame.status().message();

  auto Shed = Svc.submit(*Frame);
  ASSERT_TRUE(Shed.ok()); // queue admission is not the budget gate
  InferenceResponse R = Shed->Result.get();
  EXPECT_EQ(R.Outcome.code(), ErrorCode::ResourceExhausted)
      << R.Outcome.message();
  drain(Svc);
  EXPECT_GE(Svc.stats().Failed, 1u);

  // Headroom restored: the SAME frame now completes.
  ResourceGovernor::instance().setBudgetBytes(0);
  auto Ok = Svc.submit(*Frame);
  ASSERT_TRUE(Ok.ok());
  InferenceResponse R2 = Ok->Result.get();
  EXPECT_TRUE(R2.Outcome.ok()) << R2.Outcome.message();
  ResourceGovernor::instance().setBudgetBytes(SavedBudget);
}

/// An injected BudgetExceeded fault (the ACE_FAULT_INJECT=budget-exceeded
/// soak leg) fails exactly one request with ResourceExhausted and leaves
/// no residue: the next request on the same session completes.
TEST_F(InferenceServiceTest, BudgetFaultFailsOneRequestCleanly) {
  InferenceService Svc(Compiled->Program, Compiled->State);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok());
  auto Frame = Svc.encryptRequest(*Sid, makeInput(23));
  ASSERT_TRUE(Frame.ok());

  FaultInjector::instance().arm(FaultKind::BudgetExceeded, /*Count=*/1);
  auto Faulted = Svc.submit(*Frame);
  ASSERT_TRUE(Faulted.ok());
  InferenceResponse R = Faulted->Result.get();
  EXPECT_EQ(R.Outcome.code(), ErrorCode::ResourceExhausted)
      << R.Outcome.message();

  FaultInjector::instance().reset();
  auto Healthy = Svc.submit(*Frame);
  ASSERT_TRUE(Healthy.ok());
  InferenceResponse R2 = Healthy->Result.get();
  EXPECT_TRUE(R2.Outcome.ok()) << R2.Outcome.message();
}

/// Idle sessions lose their cached keys after the TTL (the long-running
/// server reclaiming memory from quiet clients) and regenerate them
/// transparently on the next request.
TEST_F(InferenceServiceTest, IdleTtlEvictsSessionKeysAndRecovers) {
  ServiceConfig Cfg;
  Cfg.SessionIdleSeconds = 0.05;
  InferenceService Svc(Compiled->Program, Compiled->State, Cfg);
  auto Sid = Svc.openSession();
  ASSERT_TRUE(Sid.ok());
  auto Frame = Svc.encryptRequest(*Sid, makeInput(24));
  ASSERT_TRUE(Frame.ok());
  auto T = Svc.submit(*Frame);
  ASSERT_TRUE(T.ok());
  ASSERT_TRUE(T->Result.get().Outcome.ok());
  ASSERT_GT(Svc.stats().KeyCacheBytes, 0u);

  // The dispatcher sweeps at TTL/2 when idle; give it a few periods.
  bool Evicted = false;
  for (int I = 0; I < 100 && !Evicted; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ServiceStats S = Svc.stats();
    Evicted = S.IdleKeyEvictions >= 1 && S.KeyCacheBytes == 0;
  }
  EXPECT_TRUE(Evicted) << Svc.stats().json();

  // The session is still open; keys regenerate on demand.
  auto T2 = Svc.submit(*Frame);
  ASSERT_TRUE(T2.ok());
  InferenceResponse R2 = T2->Result.get();
  EXPECT_TRUE(R2.Outcome.ok()) << R2.Outcome.message();
  EXPECT_GT(Svc.stats().KeyCacheBytes, 0u);
}

} // namespace
