//===----------------------------------------------------------------------===//
// C API tests: the surface generated programs call, exercised the way a
// generated program does (create, keygen, encrypt, ops, decrypt).
//===----------------------------------------------------------------------===//

#include "fhe/CApi.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct CApiFixture : ::testing::Test {
  AceFheContext *Ctx = nullptr;

  void SetUp() override {
    Ctx = ace_create(/*ring_degree=*/1024, /*slots=*/64, /*log_scale=*/45,
                     /*log_q0=*/55, /*num_rescale=*/8, /*log_special=*/60,
                     /*sparse_secret=*/0, /*seed=*/9);
    ASSERT_NE(Ctx, nullptr);
    int64_t Steps[] = {1, 3};
    ASSERT_EQ(ace_keygen(Ctx, Steps, nullptr, 2, /*need_relin=*/1,
                         /*need_conj=*/0, /*bootstrap=*/0, 12, 2, 39),
              ACE_OK);
    ace_clear_error();
  }
  void TearDown() override { ace_destroy(Ctx); }
};

TEST_F(CApiFixture, EncryptDecryptRoundTrip) {
  std::vector<double> X(64);
  for (size_t I = 0; I < X.size(); ++I)
    X[I] = 0.01 * static_cast<double>(I) - 0.3;
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), X.size(), 9);
  std::vector<double> Out(64);
  ace_decrypt(Ctx, Ct, Out.data(), Out.size());
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 1e-6);
  ace_ct_free(Ct);
}

TEST_F(CApiFixture, ArithmeticPipeline) {
  std::vector<double> X(64, 0.5), Y(64, 0.25), W(64, 2.0);
  AceFheCiphertext *A = ace_encrypt(Ctx, X.data(), 64, 9);
  AceFheCiphertext *B = ace_encrypt(Ctx, Y.data(), 64, 9);

  // ((a * w rescaled) + b) * b, relinearized and rescaled: value
  // (0.5*2 + 0.25) * 0.25 = 0.3125.
  AceFheCiphertext *T1 = ace_mul_plain(Ctx, A, W.data(), 64);
  AceFheCiphertext *T2 = ace_rescale(Ctx, T1);
  AceFheCiphertext *T3 = ace_add(Ctx, T2, B);
  AceFheCiphertext *T4 = ace_mul(Ctx, T3, B);
  AceFheCiphertext *T5 = ace_rescale(Ctx, T4);

  std::vector<double> Out(64);
  ace_decrypt(Ctx, T5, Out.data(), 64);
  for (double V : Out)
    EXPECT_NEAR(V, 0.3125, 1e-4);

  for (auto *Ct : {A, B, T1, T2, T3, T4, T5})
    ace_ct_free(Ct);
}

TEST_F(CApiFixture, RotateAndConstOps) {
  std::vector<double> X(64);
  for (size_t I = 0; I < 64; ++I)
    X[I] = static_cast<double>(I) / 64.0;
  AceFheCiphertext *A = ace_encrypt(Ctx, X.data(), 64, 9);
  AceFheCiphertext *R = ace_rotate(Ctx, A, 3);
  AceFheCiphertext *S = ace_add_const(Ctx, R, 0.5);
  AceFheCiphertext *M = ace_mul_const(Ctx, S, -2.0);
  AceFheCiphertext *F = ace_rescale(Ctx, M);

  std::vector<double> Out(64);
  ace_decrypt(Ctx, F, Out.data(), 64);
  for (size_t I = 0; I < 64; ++I)
    EXPECT_NEAR(Out[I], -2.0 * (X[(I + 3) % 64] + 0.5), 1e-4);

  for (auto *Ct : {A, R, S, M, F})
    ace_ct_free(Ct);
}

TEST_F(CApiFixture, ModSwitch) {
  std::vector<double> X(64, 0.125);
  AceFheCiphertext *A = ace_encrypt(Ctx, X.data(), 64, 9);
  AceFheCiphertext *B = ace_modswitch_to(Ctx, A, 2);
  std::vector<double> Out(64);
  ace_decrypt(Ctx, B, Out.data(), 64);
  for (double V : Out)
    EXPECT_NEAR(V, 0.125, 1e-6);
  ace_ct_free(A);
  ace_ct_free(B);
}

TEST(CApiTest, RejectsInvalidParameters) {
  ace_clear_error();
  EXPECT_EQ(ace_create(1000 /*not a power of two*/, 64, 45, 55, 8, 60, 0,
                       1),
            nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(ace_last_error_message()).find("1000"),
            std::string::npos);
  ace_clear_error();
  EXPECT_EQ(ace_last_error(), ACE_OK);
  EXPECT_STREQ(ace_last_error_message(), "");
}

TEST(CApiTest, WeightBlobRoundTrip) {
  const char *Path = "/tmp/ace_capi_weights.bin";
  std::vector<double> W = {1.5, -2.25, 3.0};
  FILE *F = std::fopen(Path, "wb");
  ASSERT_NE(F, nullptr);
  std::fwrite(W.data(), sizeof(double), W.size(), F);
  std::fclose(F);
  size_t Count = 0;
  double *Back = ace_load_weights(Path, &Count);
  ASSERT_NE(Back, nullptr);
  ASSERT_EQ(Count, 3u);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_DOUBLE_EQ(Back[I], W[I]);
  free(Back);
  EXPECT_EQ(ace_load_weights("/tmp/ace_missing.bin", &Count), nullptr);
}


//===----------------------------------------------------------------------===//
// Error-path tests: every caller mistake must come back as an error code
// plus a descriptive message - never a crash (ISSUE: C-API error channel).
//===----------------------------------------------------------------------===//

TEST_F(CApiFixture, NullHandlesReturnErrors) {
  ace_clear_error();
  std::vector<double> X(64, 0.1);
  std::vector<double> Out(64);

  EXPECT_EQ(ace_encrypt(nullptr, X.data(), 64, 9), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);

  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr);

  EXPECT_EQ(ace_rotate(Ctx, nullptr, 1), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ace_add(Ctx, Ct, nullptr), nullptr);
  EXPECT_EQ(ace_mul(nullptr, Ct, Ct), nullptr);
  EXPECT_EQ(ace_decrypt(Ctx, nullptr, Out.data(), 64),
            ACE_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ace_decrypt(Ctx, Ct, nullptr, 64), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ace_keygen(nullptr, nullptr, nullptr, 0, 0, 0, 0, 0, 0, 0),
            ACE_ERR_INVALID_ARGUMENT);
  ace_ct_free(Ct);
}

TEST_F(CApiFixture, InvalidHandlePatternIsRejected) {
  // A zeroed buffer stands in for a freed/garbage handle: the magic tag
  // does not match, so the call reports instead of dereferencing junk.
  ace_clear_error();
  alignas(16) unsigned char Zeros[256] = {0};
  auto *Bogus = reinterpret_cast<AceFheCiphertext *>(Zeros);
  EXPECT_EQ(ace_rotate(Ctx, Bogus, 1), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(ace_last_error_message()).find("handle"),
            std::string::npos);

  auto *BogusCtx = reinterpret_cast<AceFheContext *>(Zeros);
  std::vector<double> X(64, 0.1);
  EXPECT_EQ(ace_encrypt(BogusCtx, X.data(), 64, 9), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
}

TEST_F(CApiFixture, RotateWithoutKeyNamesTheStep) {
  // Keygen covered steps {1, 3}; step 5 has no Galois key.
  ace_clear_error();
  std::vector<double> X(64, 0.1);
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr);
  EXPECT_EQ(ace_rotate(Ctx, Ct, 5), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_KEY_MISSING);
  EXPECT_NE(std::string(ace_last_error_message()).find("step 5"),
            std::string::npos);
  ace_ct_free(Ct);
}

TEST_F(CApiFixture, EncryptTooManyValuesFails) {
  ace_clear_error();
  std::vector<double> X(65, 0.1); // context has 64 slots
  EXPECT_EQ(ace_encrypt(Ctx, X.data(), X.size(), 9), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(ace_last_error_message()).find("65"),
            std::string::npos);

  // Bad level requests are level errors naming the chain length.
  EXPECT_EQ(ace_encrypt(Ctx, X.data(), 64, 99), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_LEVEL_MISMATCH);
}

TEST_F(CApiFixture, RescaleAtBaseLevelIsDepthExhausted) {
  ace_clear_error();
  std::vector<double> X(64, 0.1);
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 1);
  ASSERT_NE(Ct, nullptr);
  EXPECT_EQ(ace_rescale(Ctx, Ct), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_DEPTH_EXHAUSTED);
  ace_ct_free(Ct);
}

TEST_F(CApiFixture, BootstrapWithoutKeysIsKeyMissing) {
  ace_clear_error();
  std::vector<double> X(64, 0.1);
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 1);
  ASSERT_NE(Ct, nullptr);
  EXPECT_EQ(ace_bootstrap(Ctx, Ct, 4), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_KEY_MISSING);
  EXPECT_NE(std::string(ace_last_error_message()).find("bootstrap"),
            std::string::npos);
  ace_ct_free(Ct);
}

TEST(CApiTest, MulWithoutRelinKeyIsKeyMissing) {
  AceFheContext *Ctx = ace_create(1024, 64, 45, 55, 8, 60, 0, 9);
  ASSERT_NE(Ctx, nullptr);
  // Keygen without the relin key.
  ASSERT_EQ(ace_keygen(Ctx, nullptr, nullptr, 0, /*need_relin=*/0, 0, 0, 12,
                       2, 39),
            ACE_OK);
  ace_clear_error();
  std::vector<double> X(64, 0.1);
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr);
  EXPECT_EQ(ace_mul(Ctx, Ct, Ct), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_KEY_MISSING);
  ace_ct_free(Ct);
  ace_destroy(Ctx);
}

TEST(CApiTest, MismatchedSlotCountsAreRejected) {
  // Two contexts with different slot counts; a ciphertext from one fed
  // into the other must be caught by operand validation.
  AceFheContext *C64 = ace_create(1024, 64, 45, 55, 8, 60, 0, 9);
  AceFheContext *C32 = ace_create(1024, 32, 45, 55, 8, 60, 0, 9);
  ASSERT_NE(C64, nullptr);
  ASSERT_NE(C32, nullptr);
  ASSERT_EQ(ace_keygen(C64, nullptr, nullptr, 0, 1, 0, 0, 12, 2, 39),
            ACE_OK);
  ASSERT_EQ(ace_keygen(C32, nullptr, nullptr, 0, 1, 0, 0, 12, 2, 39),
            ACE_OK);
  ace_clear_error();
  std::vector<double> X(32, 0.1);
  AceFheCiphertext *Ct = ace_encrypt(C32, X.data(), 32, 9);
  ASSERT_NE(Ct, nullptr);
  EXPECT_EQ(ace_add(C64, Ct, Ct), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(ace_last_error_message()).find("slot"),
            std::string::npos);
  ace_ct_free(Ct);
  ace_destroy(C64);
  ace_destroy(C32);
}

TEST(CApiTest, ErrorChannelIsSticky) {
  ace_clear_error();
  AceFheContext *Ctx = ace_create(1024, 64, 45, 55, 8, 60, 0, 9);
  ASSERT_NE(Ctx, nullptr);
  ASSERT_EQ(ace_keygen(Ctx, nullptr, nullptr, 0, 0, 0, 0, 12, 2, 39),
            ACE_OK);
  std::vector<double> X(65, 0.1);
  EXPECT_EQ(ace_encrypt(Ctx, X.data(), 65, 9), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  // A successful call does not clear the sticky error...
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  // ...only ace_clear_error does.
  ace_clear_error();
  EXPECT_EQ(ace_last_error(), ACE_OK);
  ace_ct_free(Ct);
  ace_destroy(Ctx);
}

TEST_F(CApiFixture, CiphertextSaveLoadRoundTrip) {
  std::vector<double> X(64);
  for (size_t I = 0; I < X.size(); ++I)
    X[I] = 0.02 * static_cast<double>(I) - 0.5;
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr);
  const char *Path = "/tmp/ace_capi_ct.bin";
  ASSERT_EQ(ace_ct_save(Ctx, Ct, Path), ACE_OK);
  AceFheCiphertext *Back = ace_ct_load(Ctx, Path);
  ASSERT_NE(Back, nullptr) << ace_last_error_message();
  std::vector<double> Out(64);
  ASSERT_EQ(ace_decrypt(Ctx, Back, Out.data(), 64), ACE_OK);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 1e-6);
  ace_ct_free(Back);
  ace_ct_free(Ct);
  std::remove(Path);
}

TEST_F(CApiFixture, KeyAndParamsSaveLoadRebuildWorkingContext) {
  const char *ParamsPath = "/tmp/ace_capi_params.bin";
  const char *KeysPath = "/tmp/ace_capi_keys.bin";
  ASSERT_EQ(ace_params_save(Ctx, ParamsPath), ACE_OK);
  ASSERT_EQ(ace_key_save(Ctx, KeysPath), ACE_OK);

  // A context rebuilt from the params file plus the key file must be
  // fully functional: encrypt, rotate with the *loaded* rotation keys,
  // decrypt.
  AceFheContext *C2 = ace_params_load(ParamsPath);
  ASSERT_NE(C2, nullptr) << ace_last_error_message();
  ASSERT_EQ(ace_key_load(C2, KeysPath), ACE_OK)
      << ace_last_error_message();
  std::vector<double> X(64);
  for (size_t I = 0; I < X.size(); ++I)
    X[I] = 0.01 * static_cast<double>(I);
  AceFheCiphertext *Ct = ace_encrypt(C2, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr) << ace_last_error_message();
  AceFheCiphertext *Rot = ace_rotate(C2, Ct, 1);
  ASSERT_NE(Rot, nullptr) << ace_last_error_message();
  std::vector<double> Out(64);
  ASSERT_EQ(ace_decrypt(C2, Rot, Out.data(), 64), ACE_OK);
  for (size_t I = 0; I < 63; ++I)
    EXPECT_NEAR(Out[I], X[I + 1], 1e-6);
  ace_ct_free(Rot);
  ace_ct_free(Ct);
  ace_destroy(C2);
  std::remove(ParamsPath);
  std::remove(KeysPath);
}

TEST_F(CApiFixture, SerializationErrorPaths) {
  ace_clear_error();
  std::vector<double> X(64, 0.25);
  AceFheCiphertext *Ct = ace_encrypt(Ctx, X.data(), 64, 9);
  ASSERT_NE(Ct, nullptr);

  // Unwritable path surfaces as an I/O error, not a crash.
  EXPECT_EQ(ace_ct_save(Ctx, Ct, "/nonexistent-dir/ct.bin"), ACE_ERR_IO);
  EXPECT_EQ(ace_last_error(), ACE_ERR_IO);
  ace_clear_error();

  // A corrupted file surfaces as data corruption with a message.
  const char *Path = "/tmp/ace_capi_ct_corrupt.bin";
  ASSERT_EQ(ace_ct_save(Ctx, Ct, Path), ACE_OK);
  {
    std::FILE *F = std::fopen(Path, "r+b");
    ASSERT_NE(F, nullptr);
    std::fseek(F, 24, SEEK_SET);
    char Junk = 0x5A;
    std::fwrite(&Junk, 1, 1, F);
    std::fclose(F);
  }
  EXPECT_EQ(ace_ct_load(Ctx, Path), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_DATA_CORRUPT);
  EXPECT_NE(std::string(ace_last_error_message()).find("checksum"),
            std::string::npos)
      << ace_last_error_message();
  ace_clear_error();

  // NULL arguments are rejected, never dereferenced.
  EXPECT_EQ(ace_ct_save(nullptr, Ct, Path), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ace_ct_save(Ctx, nullptr, Path), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ace_ct_save(Ctx, Ct, nullptr), ACE_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(ace_ct_load(Ctx, nullptr), nullptr);
  EXPECT_EQ(ace_key_load(nullptr, Path), ACE_ERR_INVALID_ARGUMENT);
  ace_clear_error();
  ace_ct_free(Ct);
  std::remove(Path);
}

} // namespace
