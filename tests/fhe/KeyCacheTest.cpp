//===----------------------------------------------------------------------===//
// Rotation-key cache tests: declare/generate-on-first-use semantics, LRU
// and capacity eviction, transparent regeneration, truncation widening,
// pinning via shared_ptr handles, and budget refusals propagating as
// clean ResourceExhausted through the checked evaluator tier.
//===----------------------------------------------------------------------===//

#include "fhe/Encryptor.h"
#include "fhe/Evaluator.h"
#include "support/FaultInjector.h"
#include "support/ResourceGovernor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

struct KeyCacheTest : ::testing::Test {
  KeyCacheTest() : SavedBudget(ResourceGovernor::instance().budgetBytes()) {
    CkksParams P;
    P.RingDegree = 1024;
    P.Slots = 64;
    P.LogScale = 45;
    P.LogFirstModulus = 55;
    P.NumRescaleModuli = 11;
    P.LogSpecialModulus = 60;
    P.Seed = 17;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Cache = std::make_unique<RotationKeyCache>(*Ctx, *Gen);
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys, Cache.get());
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
    Decrypt = std::make_unique<Decryptor>(*Ctx, Gen->secretKey());
  }
  ~KeyCacheTest() override {
    FaultInjector::instance().reset();
    ResourceGovernor::instance().setBudgetBytes(SavedBudget);
    ResourceGovernor::instance().resetCounters();
  }

  std::vector<double> randomSlots(uint64_t Seed) {
    Rng R(Seed);
    std::vector<double> X(Ctx->slots());
    for (auto &V : X)
      V = R.uniformReal(-1, 1);
    return X;
  }

  size_t SavedBudget;
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<RotationKeyCache> Cache;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

TEST_F(KeyCacheTest, GeneratesOnFirstUseThenHits) {
  uint64_t Galois = Cache->declareRotation(3);
  EXPECT_TRUE(Cache->declared(Galois));
  EXPECT_EQ(Cache->stats().ResidentCount, 0u); // declared, not built

  auto First = Cache->get(Galois);
  ASSERT_TRUE(First.ok()) << First.status().message();
  EXPECT_EQ(Cache->stats().Misses, 1u);
  EXPECT_EQ(Cache->stats().ResidentCount, 1u);
  EXPECT_GT(Cache->stats().ResidentBytes, 0u);

  auto Second = Cache->get(Galois);
  ASSERT_TRUE(Second.ok());
  EXPECT_EQ(Cache->stats().Hits, 1u);
  EXPECT_EQ(Cache->stats().Misses, 1u);
  EXPECT_EQ(First->get(), Second->get()); // same resident key
}

TEST_F(KeyCacheTest, UndeclaredGaloisIsKeyMissing) {
  auto Out = Cache->get(12345);
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.status().code(), ErrorCode::KeyMissing);
}

TEST_F(KeyCacheTest, CachedRotationMatchesEagerKey) {
  // The cache draws fresh key material (different RNG order than an
  // eager fill), so compare decrypted values, not ciphertext bits.
  uint64_t G5 = galoisForRotation(Ctx->degree(), Ctx->slots(), 5);
  EvalKeys EagerKeys;
  EagerKeys.Rotations.emplace(G5, Gen->makeRotationKey(5));
  Evaluator EagerEval(*Ctx, *Enc, EagerKeys);
  Cache->declareRotation(5);

  std::vector<double> X = randomSlots(3);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 3);
  auto Cached = Decrypt->decryptRealValues(*Enc, Eval->rotate(Ct, 5));
  auto Eager = Decrypt->decryptRealValues(*Enc, EagerEval.rotate(Ct, 5));
  for (size_t I = 0; I < X.size(); ++I) {
    EXPECT_NEAR(Cached[I], X[(I + 5) % Ctx->slots()], 1e-5);
    EXPECT_NEAR(Cached[I], Eager[I], 1e-5);
  }
}

TEST_F(KeyCacheTest, EvictionRegeneratesTransparently) {
  Cache->declareRotation(2);
  std::vector<double> X = randomSlots(7);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 3);
  auto Before = Decrypt->decryptRealValues(*Enc, Eval->rotate(Ct, 2));

  size_t Released = Cache->evictColdest(SIZE_MAX);
  EXPECT_GT(Released, 0u);
  EXPECT_EQ(Cache->stats().ResidentCount, 0u);
  EXPECT_EQ(Cache->stats().Evictions, 1u);

  // Regenerated key: fresh material, same rotation semantics.
  auto After = Decrypt->decryptRealValues(*Enc, Eval->rotate(Ct, 2));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(After[I], Before[I], 1e-5);
  EXPECT_EQ(Cache->stats().Misses, 2u);
}

TEST_F(KeyCacheTest, CapacityBoundEvictsLeastRecentlyUsed) {
  uint64_t G1 = Cache->declareRotation(1);
  uint64_t G2 = Cache->declareRotation(2);
  auto K1 = Cache->get(G1);
  ASSERT_TRUE(K1.ok());
  size_t OneKeyBytes = Cache->stats().ResidentBytes;
  // Room for one key only; drop our handle so G1 is evictable.
  *K1 = nullptr;
  Cache->setCapacityBytes(OneKeyBytes);

  auto K2 = Cache->get(G2);
  ASSERT_TRUE(K2.ok());
  EXPECT_EQ(Cache->stats().ResidentCount, 1u);
  EXPECT_GE(Cache->stats().Evictions, 1u);
  EXPECT_LE(Cache->stats().ResidentBytes, OneKeyBytes);
  // G1 is still declared and regenerates on demand.
  EXPECT_TRUE(Cache->declared(G1));
  EXPECT_TRUE(Cache->get(G1).ok());
}

TEST_F(KeyCacheTest, PinnedKeysAreNotEvicted) {
  uint64_t G = Cache->declareRotation(4);
  auto Pinned = Cache->get(G);
  ASSERT_TRUE(Pinned.ok());
  // The shared_ptr handle keeps the entry hot: eviction must skip it so
  // accounting stays honest while an op is mid-flight with the key.
  EXPECT_EQ(Cache->evictColdest(SIZE_MAX), 0u);
  EXPECT_EQ(Cache->stats().ResidentCount, 1u);

  *Pinned = nullptr; // drop the pin
  EXPECT_GT(Cache->evictColdest(SIZE_MAX), 0u);
  EXPECT_EQ(Cache->stats().ResidentCount, 0u);
}

TEST_F(KeyCacheTest, RedeclarationWidensTruncation) {
  uint64_t G = Cache->declareRotation(6, /*MaxNumQ=*/3);
  auto Narrow = Cache->get(G);
  ASSERT_TRUE(Narrow.ok());
  EXPECT_EQ((*Narrow)->Parts.size(), 3u);

  // Widening to the full chain drops the narrower cached key; the next
  // get() builds the wide one.
  Cache->declareRotation(6, /*MaxNumQ=*/0);
  auto Wide = Cache->get(G);
  ASSERT_TRUE(Wide.ok());
  EXPECT_EQ((*Wide)->Parts.size(), Ctx->chainLength());
}

TEST_F(KeyCacheTest, GaloisRedeclarationWidensAndNeverNarrows) {
  // Raw Galois declarations (bootstrap SubSum, conjugation) follow the
  // same widen-and-invalidate rule as rotations: a key cached at a
  // narrower truncation must not keep serving once a deeper use is
  // declared — the hot tier's depth assert is compiled out in release.
  uint64_t G = galoisForConjugation(Ctx->degree());
  Cache->declareGalois(G, /*MaxNumQ=*/3);
  auto Narrow = Cache->get(G);
  ASSERT_TRUE(Narrow.ok());
  EXPECT_EQ((*Narrow)->Parts.size(), 3u);
  *Narrow = nullptr; // unpin so the widening can drop it

  Cache->declareGalois(G, /*MaxNumQ=*/0);
  auto Wide = Cache->get(G);
  ASSERT_TRUE(Wide.ok());
  EXPECT_EQ((*Wide)->Parts.size(), Ctx->chainLength());
  *Wide = nullptr;

  // A later narrower declaration keeps the full-depth key resident.
  Cache->declareGalois(G, /*MaxNumQ=*/2);
  auto Kept = Cache->get(G);
  ASSERT_TRUE(Kept.ok());
  EXPECT_EQ((*Kept)->Parts.size(), Ctx->chainLength());
}

TEST_F(KeyCacheTest, BudgetRefusalIsResourceExhaustedNotACrash) {
  Cache->declareRotation(7);
  std::vector<double> X = randomSlots(11);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 3);

  // Force the admission refusal without a real tight budget. The
  // checked tier must surface it verbatim (not misclassify it as a
  // missing key) and leave no partial entry behind.
  FaultInjector::instance().arm(FaultKind::BudgetExceeded, /*Count=*/1);
  auto Refused = Eval->checkedRotate(Ct, 7);
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(Cache->stats().ResidentCount, 0u);

  // The fault fired once; the same op now succeeds end to end.
  auto Ok = Eval->checkedRotate(Ct, 7);
  ASSERT_TRUE(Ok.ok()) << Ok.status().message();
  auto Out = Decrypt->decryptRealValues(*Enc, *Ok);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[(I + 7) % Ctx->slots()], 1e-5);
}

TEST_F(KeyCacheTest, ReleaseAllKeepsDeclarations) {
  Cache->declareRotation(1);
  Cache->declareGalois(2 * Ctx->degree() - 1); // conjugation element
  uint64_t G1 = galoisForRotation(Ctx->degree(), Ctx->slots(), 1);
  ASSERT_TRUE(Cache->get(G1).ok());
  EXPECT_GT(Cache->releaseAll(), 0u);
  EXPECT_EQ(Cache->stats().ResidentBytes, 0u);
  EXPECT_EQ(Cache->stats().DeclaredCount, 2u);
  EXPECT_TRUE(Cache->get(G1).ok());
}

} // namespace
