//===----------------------------------------------------------------------===//
// Level-aware key truncation tests (the Figure 7 memory mechanism): a
// rotation key truncated to level l works for every ciphertext at or
// below l, shrinks quadratically, and matches the full key's results.
//===----------------------------------------------------------------------===//

#include "fhe/Encryptor.h"
#include "fhe/Evaluator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

struct Fixture : ::testing::Test {
  Fixture() {
    CkksParams P;
    P.RingDegree = 1024;
    P.Slots = 64;
    P.LogScale = 45;
    P.LogFirstModulus = 55;
    P.NumRescaleModuli = 11;
    P.LogSpecialModulus = 60;
    P.Seed = 17;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
    Decrypt = std::make_unique<Decryptor>(*Ctx, Gen->secretKey());
  }

  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

TEST_F(Fixture, TruncatedKeyShrinksQuadratically) {
  SwitchKey Full = Gen->makeRotationKey(1);
  SwitchKey Half = Gen->makeRotationKey(1, /*MaxNumQ=*/6);
  EXPECT_EQ(Full.Parts.size(), 12u);
  EXPECT_EQ(Half.Parts.size(), 6u);
  // 6 digits over 7 moduli vs 12 digits over 13 moduli.
  double Ratio = static_cast<double>(Half.byteSize()) / Full.byteSize();
  EXPECT_NEAR(Ratio, 6.0 * 7 / (12.0 * 13), 0.01);
}

TEST_F(Fixture, TruncatedKeyRotatesCorrectlyBelowItsLevel) {
  uint64_t Galois = galoisForRotation(Ctx->degree(), Ctx->slots(), 5);
  Keys.Rotations.emplace(Galois, Gen->makeRotationKey(5, /*MaxNumQ=*/4));

  Rng R(3);
  std::vector<double> X(Ctx->slots());
  for (auto &V : X)
    V = R.uniformReal(-1, 1);
  for (size_t NumQ : {size_t(2), size_t(3), size_t(4)}) {
    Ciphertext Ct = Encrypt->encryptValues(*Enc, X, NumQ);
    auto Out = Decrypt->decryptRealValues(*Enc, Eval->rotate(Ct, 5));
    for (size_t I = 0; I < X.size(); ++I)
      EXPECT_NEAR(Out[I], X[(I + 5) % Ctx->slots()], 1e-5)
          << "numQ " << NumQ;
  }
}

TEST_F(Fixture, TruncatedAndFullKeysAgree) {
  uint64_t G2 = galoisForRotation(Ctx->degree(), Ctx->slots(), 2);
  EvalKeys FullKeys;
  FullKeys.Rotations.emplace(G2, Gen->makeRotationKey(2));
  Evaluator FullEval(*Ctx, *Enc, FullKeys);
  Keys.Rotations.emplace(G2, Gen->makeRotationKey(2, /*MaxNumQ=*/3));

  Rng R(5);
  std::vector<double> X(Ctx->slots());
  for (auto &V : X)
    V = R.uniformReal(-1, 1);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 3);
  auto A = Decrypt->decryptRealValues(*Enc, Eval->rotate(Ct, 2));
  auto B = Decrypt->decryptRealValues(*Enc, FullEval.rotate(Ct, 2));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(A[I], B[I], 1e-6);
}

TEST_F(Fixture, TruncateKeyHelperIsIdempotentAtFullLength) {
  SwitchKey Full = Gen->makeRotationKey(1);
  SwitchKey Same = KeyGenerator::truncateKey(Full, 0);
  EXPECT_EQ(Same.byteSize(), Full.byteSize());
  SwitchKey Same2 = KeyGenerator::truncateKey(Full, 99);
  EXPECT_EQ(Same2.byteSize(), Full.byteSize());
}

} // namespace
