//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// I/O fault-injection property tests for the serializer: a short write, a
// short read, or a corrupted checksum anywhere in a save/load pair must
// surface as a clean, descriptive Status - in release builds too, where
// asserts are gone and only the explicit validation stands. This suite
// runs in the CI sanitizer job (its name matches the FaultInjection test
// regex).
//
//===----------------------------------------------------------------------===//

#include "fhe/Encoder.h"
#include "fhe/Encryptor.h"
#include "fhe/Serializer.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ace;
using namespace ace::fhe;

namespace {

class SerializerFaultInjectionTest : public ::testing::Test {
protected:
  SerializerFaultInjectionTest() {
    CkksParams P;
    P.RingDegree = 64;
    P.Slots = 16;
    P.LogScale = 30;
    P.LogFirstModulus = 40;
    P.NumRescaleModuli = 2;
    P.LogSpecialModulus = 45;
    P.Seed = 13;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
    Ct = Encrypt->encryptValues(*Enc, {1.0, -0.5}, Ctx->chainLength());
    FaultInjector::instance().reset();
  }

  ~SerializerFaultInjectionTest() override {
    FaultInjector::instance().reset();
  }

  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  std::unique_ptr<Encryptor> Encrypt;
  Ciphertext Ct;
};

TEST_F(SerializerFaultInjectionTest, ShortWriteSurfacesAsIoError) {
  FaultInjector::instance().arm(FaultKind::ShortWrite);
  std::stringstream SS;
  Status S = wire::save(Ct, SS);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::IoError);
  EXPECT_NE(S.message().find("short write"), std::string::npos);
  EXPECT_EQ(FaultInjector::instance().firedCount(FaultKind::ShortWrite),
            1u);
  // The truncated stream the failed save left behind must itself load
  // cleanly as an error.
  auto R = wire::loadCiphertext(*Ctx, SS);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::DataCorrupt);
}

TEST_F(SerializerFaultInjectionTest, ShortReadSurfacesAsDataCorrupt) {
  std::stringstream SS;
  ASSERT_TRUE(wire::save(Ct, SS).ok());
  FaultInjector::instance().arm(FaultKind::ShortRead);
  auto R = wire::loadCiphertext(*Ctx, SS);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::DataCorrupt);
  EXPECT_NE(R.status().message().find("truncated"), std::string::npos);
  EXPECT_EQ(FaultInjector::instance().firedCount(FaultKind::ShortRead), 1u);
}

TEST_F(SerializerFaultInjectionTest, ChecksumCorruptionIsDetectedOnLoad) {
  FaultInjector::instance().arm(FaultKind::ChecksumCorrupt);
  std::vector<uint8_t> Bytes;
  // The save itself succeeds - the corruption models bit rot between
  // writer and reader.
  ASSERT_TRUE(wire::save(Ct, Bytes).ok());
  EXPECT_EQ(
      FaultInjector::instance().firedCount(FaultKind::ChecksumCorrupt), 1u);
  auto R = wire::loadCiphertext(*Ctx, Bytes.data(), Bytes.size());
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::DataCorrupt);
  EXPECT_NE(R.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST_F(SerializerFaultInjectionTest, RecoveryAfterFaultClears) {
  // After the armed fault fires once, the very next save/load pair works.
  FaultInjector::instance().arm(FaultKind::ShortWrite, /*Count=*/1);
  std::stringstream Bad;
  ASSERT_FALSE(wire::save(Ct, Bad).ok());
  std::stringstream Good;
  ASSERT_TRUE(wire::save(Ct, Good).ok());
  auto R = wire::loadCiphertext(*Ctx, Good);
  ASSERT_TRUE(R.ok()) << R.status().message();
}

TEST_F(SerializerFaultInjectionTest, EnvSpecParsesIoFaultKinds) {
  EXPECT_TRUE(
      FaultInjector::instance().configure("short-read:2,short-write:1"));
  EXPECT_TRUE(FaultInjector::instance().enabled());
  FaultInjector::instance().reset();
  EXPECT_TRUE(FaultInjector::instance().configure("checksum-corrupt"));
  FaultInjector::instance().reset();
}

} // namespace
