//===----------------------------------------------------------------------===//
// Limb-pool differential tests: the pool is a pure storage recycler, so
// running the same op pipeline with the pool on and bypassed (the
// ACE_LIMB_POOL=off switch) must produce bit-identical ciphertexts — at
// one thread and with the hot loops parallelized.
//===----------------------------------------------------------------------===//

#include "fhe/Encryptor.h"
#include "fhe/Evaluator.h"
#include "support/LimbPool.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ace;
using namespace ace::fhe;

namespace {

/// Bitwise equality of every RNS component of every polynomial.
::testing::AssertionResult samePolys(const Ciphertext &A,
                                     const Ciphertext &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "polynomial count " << A.size() << " vs " << B.size();
  if (A.Scale != B.Scale)
    return ::testing::AssertionFailure()
           << "scale " << A.Scale << " vs " << B.Scale;
  for (size_t P = 0; P < A.size(); ++P) {
    const RnsPoly &PA = A.Polys[P], &PB = B.Polys[P];
    if (PA.numComponents() != PB.numComponents())
      return ::testing::AssertionFailure() << "component count differs";
    size_t N = PA.context().degree();
    for (size_t C = 0; C < PA.numComponents(); ++C)
      if (std::memcmp(PA.component(C), PB.component(C),
                      N * sizeof(uint64_t)) != 0)
        return ::testing::AssertionFailure()
               << "poly " << P << " component " << C << " differs";
  }
  return ::testing::AssertionSuccess();
}

struct PoolDifferentialTest : ::testing::Test {
  PoolDifferentialTest() : SavedEnabled(LimbPool::instance().enabled()) {
    CkksParams P;
    P.RingDegree = 1024;
    P.Slots = 128;
    P.LogScale = 40;
    P.LogFirstModulus = 50;
    P.NumRescaleModuli = 6;
    P.LogSpecialModulus = 59;
    P.Seed = 77;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Gen->fillEvalKeys(Keys, {1, 3, -1}, /*NeedRelin=*/true,
                      /*NeedConjugate=*/true);
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
  }
  ~PoolDifferentialTest() override {
    ThreadPool::instance().setNumThreads(0);
    LimbPool::instance().setEnabled(SavedEnabled);
    LimbPool::instance().trim();
  }

  /// The op pipeline under test: touches every allocation-heavy kernel
  /// family (ct-ct mul + relin, rescale, rotation, plaintext ops,
  /// conjugation). Deterministic given the same input ciphertext.
  Ciphertext pipeline(const Ciphertext &In,
                      const std::vector<double> &W) {
    Ciphertext Ct = Eval->mul(In, In);
    Eval->rescaleInPlace(Ct);
    Ct = Eval->rotate(Ct, 3);
    Plaintext P = Eval->encodeForMul(Ct, W);
    Ct = Eval->mulPlain(Ct, P);
    Eval->rescaleInPlace(Ct);
    Eval->addConstInPlace(Ct, 0.25);
    Ct = Eval->conjugate(Ct);
    Eval->addInPlace(Ct, Eval->rotate(Ct, 1));
    return Ct;
  }

  bool SavedEnabled;
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
};

TEST_F(PoolDifferentialTest, PooledAndBypassedRunsAreBitIdentical) {
  Rng R(5);
  std::vector<double> X(Ctx->slots()), W(Ctx->slots());
  for (auto &V : X)
    V = R.uniformReal(-1.0, 1.0);
  for (auto &V : W)
    V = R.uniformReal(-1.0, 1.0);
  // Encrypt ONCE (encryption draws randomness); the pipeline itself is
  // deterministic, so only the storage backend differs between legs.
  Ciphertext In = Encrypt->encryptValues(*Enc, X, Ctx->chainLength());

  for (size_t Threads : {size_t(1), size_t(4)}) {
    ThreadPool::instance().setNumThreads(Threads);
    LimbPool::instance().setEnabled(true);
    Ciphertext Pooled = pipeline(In, W);
    LimbPool::instance().setEnabled(false);
    Ciphertext Bypassed = pipeline(In, W);
    EXPECT_TRUE(samePolys(Pooled, Bypassed))
        << "at " << Threads << " threads";
  }
}

TEST_F(PoolDifferentialTest, RecycledBlocksCarryNoResidue) {
  // A block that held one ciphertext's limbs is reused (uninitialized)
  // for another; assignZero and full overwrites must make the result
  // independent of what the block previously held.
  Rng R(9);
  std::vector<double> X(Ctx->slots());
  for (auto &V : X)
    V = R.uniformReal(-1.0, 1.0);
  LimbPool::instance().setEnabled(true);
  Ciphertext In = Encrypt->encryptValues(*Enc, X, Ctx->chainLength());

  // First pass populates the free lists with "dirty" blocks.
  Ciphertext First = Eval->rotate(Eval->mul(In, In), 3);
  Ciphertext FirstCopy = First; // deep copy via pooled storage
  // Second pass runs entirely on recycled blocks.
  Ciphertext Second = Eval->rotate(Eval->mul(In, In), 3);
  EXPECT_TRUE(samePolys(Second, First));
  EXPECT_TRUE(samePolys(FirstCopy, First));
}

} // namespace
