//===----------------------------------------------------------------------===//
// Differential tests for hoisted rotation key-switching: rotateHoisted
// must be bit-identical to the sequential rotate path at every thread
// count (same polynomials, scale, slot count, level, and noise budget),
// the digit-domain automorphism must commute with the decomposition
// (white-box invariant behind the hoisting), and the telemetry counters
// must prove one ModUp per batch instead of one per rotation.
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"

#include "fhe/Encryptor.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

using namespace ace;
using namespace ace::fhe;
using telemetry::Counter;
using telemetry::CounterSnapshot;
using telemetry::Telemetry;

namespace {

CkksParams testParams() {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 128;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = 6;
  P.LogSpecialModulus = 59;
  P.Seed = 91;
  return P;
}

/// Bitwise equality of every RNS component of every polynomial, plus the
/// metadata a consumer can observe (scale, slots).
::testing::AssertionResult sameCiphertext(const Ciphertext &A,
                                          const Ciphertext &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "polynomial count " << A.size() << " vs " << B.size();
  if (A.Scale != B.Scale)
    return ::testing::AssertionFailure()
           << "scale " << A.Scale << " vs " << B.Scale;
  if (A.Slots != B.Slots)
    return ::testing::AssertionFailure()
           << "slots " << A.Slots << " vs " << B.Slots;
  for (size_t P = 0; P < A.size(); ++P) {
    const RnsPoly &PA = A.Polys[P], &PB = B.Polys[P];
    if (PA.numComponents() != PB.numComponents())
      return ::testing::AssertionFailure() << "component count differs";
    size_t N = PA.context().degree();
    for (size_t C = 0; C < PA.numComponents(); ++C)
      if (std::memcmp(PA.component(C), PB.component(C),
                      N * sizeof(uint64_t)) != 0)
        return ::testing::AssertionFailure()
               << "poly " << P << " component " << C << " differs";
  }
  return ::testing::AssertionSuccess();
}

/// Steps the fixture generates rotation keys for; differential trials
/// draw from this pool.
const int64_t KeyedSteps[] = {1, 2, 3, 5, 7, 17, 31, 64, 127, -1, -3};

class HoistedRotationTest : public ::testing::Test {
protected:
  HoistedRotationTest()
      : Ctx(testParams()), Enc(Ctx), Gen(Ctx), Pub(Gen.makePublicKey()) {
    std::vector<int64_t> Steps(std::begin(KeyedSteps), std::end(KeyedSteps));
    Gen.fillEvalKeys(Keys, Steps, /*NeedRelin=*/true, /*NeedConjugate=*/true);
    Eval = std::make_unique<Evaluator>(Ctx, Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(Ctx, Pub);
  }
  void TearDown() override {
    ThreadPool::instance().setNumThreads(0);
    Telemetry::instance().setEnabled(false);
    Telemetry::instance().clear();
  }

  Ciphertext randomCiphertext(Rng &R, size_t NumQ) {
    std::vector<double> X(Ctx.slots());
    for (auto &V : X)
      V = R.uniformReal(-1.0, 1.0);
    return Encrypt->encryptValues(Enc, X, NumQ);
  }

  Context Ctx;
  Encoder Enc;
  KeyGenerator Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
};

/// The differential property at the heart of the PR: for random levels
/// and random step sets, one hoisted batch equals N sequential rotations
/// bit for bit, at one worker thread and at four.
TEST_F(HoistedRotationTest, BatchBitIdenticalToSequentialAcrossThreads) {
  Rng R(2026);
  const size_t NumKeyed = sizeof(KeyedSteps) / sizeof(KeyedSteps[0]);
  for (int Trial = 0; Trial < 6; ++Trial) {
    // Random level in [2, chainLength] and a random step multiset that
    // may contain zero (identity) and duplicate steps.
    size_t NumQ = 2 + R.uniform(Ctx.chainLength() - 1);
    Ciphertext In = randomCiphertext(R, NumQ);
    std::vector<int64_t> Steps(1 + R.uniform(8));
    for (auto &S : Steps)
      S = R.uniform(4) == 0 ? 0 : KeyedSteps[R.uniform(NumKeyed)];

    ThreadPool::instance().setNumThreads(1);
    std::vector<Ciphertext> Sequential;
    for (int64_t S : Steps)
      Sequential.push_back(Eval->rotate(In, S));

    for (size_t Threads : {1u, 4u}) {
      ThreadPool::instance().setNumThreads(Threads);
      std::vector<Ciphertext> Hoisted = Eval->rotateHoisted(In, Steps);
      ASSERT_EQ(Hoisted.size(), Steps.size());
      for (size_t I = 0; I < Steps.size(); ++I) {
        EXPECT_TRUE(sameCiphertext(Hoisted[I], Sequential[I]))
            << "trial " << Trial << " step " << Steps[I] << " at "
            << Threads << " threads";
        EXPECT_EQ(Hoisted[I].numQ(), Sequential[I].numQ());
        EXPECT_EQ(Eval->noiseBudgetBits(Hoisted[I]),
                  Eval->noiseBudgetBits(Sequential[I]));
      }
    }
  }
}

/// A batch of one is exactly rotate(); checkedRotateHoisted agrees with
/// the unchecked tier and reports missing keys per step.
TEST_F(HoistedRotationTest, BatchOfOneAndCheckedTierAgree) {
  Rng R(7);
  Ciphertext In = randomCiphertext(R, Ctx.chainLength());
  Ciphertext Single = Eval->rotate(In, 5);
  std::vector<Ciphertext> Batch = Eval->rotateHoisted(In, {5});
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_TRUE(sameCiphertext(Batch[0], Single));

  auto Checked = Eval->checkedRotateHoisted(In, {5, 0, -1});
  ASSERT_TRUE(Checked.ok()) << Checked.status().message();
  ASSERT_EQ(Checked->size(), 3u);
  EXPECT_TRUE(sameCiphertext((*Checked)[0], Single));
  EXPECT_TRUE(sameCiphertext((*Checked)[1], In));

  // Step 4 has no key in the fixture's restricted set.
  auto Missing = Eval->checkedRotateHoisted(In, {1, 4});
  ASSERT_FALSE(Missing.ok());
  EXPECT_EQ(Missing.status().code(), ErrorCode::KeyMissing);
}

/// White-box: the NTT-domain automorphism is the same map as
/// iNTT -> coefficient automorphism -> NTT, per RNS limb.
TEST_F(HoistedRotationTest, AutomorphismNttMatchesCoefficientPath) {
  Rng R(13);
  Ciphertext In = randomCiphertext(R, Ctx.chainLength());
  RnsPoly P = In.Polys[1]; // a pseudo-random NTT-form polynomial
  size_t N = Ctx.degree();
  for (int64_t Step : {1, 5, 31, -3}) {
    uint64_t Galois = galoisForRotation(N, Ctx.slots(), Step);
    RnsPoly ViaNtt = P.automorphismNtt(Galois);
    RnsPoly ViaCoeff = P;
    ViaCoeff.toCoeff();
    ViaCoeff = ViaCoeff.automorphism(Galois);
    ViaCoeff.toNtt();
    ASSERT_EQ(ViaNtt.numComponents(), ViaCoeff.numComponents());
    for (size_t C = 0; C < ViaNtt.numComponents(); ++C)
      EXPECT_EQ(std::memcmp(ViaNtt.component(C), ViaCoeff.component(C),
                            N * sizeof(uint64_t)),
                0)
          << "step " << Step << " limb " << C;
  }
}

/// White-box: automorphism-then-decompose equals
/// decompose-then-digit-automorphism on each digit's own limb (where the
/// lift to the extended basis is the identity, the digit IS the residue
/// mod its chain prime, and reduction commutes with the automorphism).
TEST_F(HoistedRotationTest, DigitAutomorphismCommutesWithDecomposition) {
  Rng R(17);
  Ciphertext In = randomCiphertext(R, Ctx.chainLength());
  RnsPoly D = In.Polys[1];
  D.toCoeff();
  size_t N = Ctx.degree();
  uint64_t Galois = galoisForRotation(N, Ctx.slots(), 7);

  HoistedDecomposition Dec = Eval->decomposeNtt(D);
  RnsPoly Rotated = D.automorphism(Galois);
  HoistedDecomposition DecRotated = Eval->decomposeNtt(Rotated);

  ASSERT_EQ(Dec.Digits.size(), DecRotated.Digits.size());
  for (size_t Digit = 0; Digit < Dec.Digits.size(); ++Digit) {
    RnsPoly Permuted = Dec.Digits[Digit].automorphismNtt(Galois);
    EXPECT_EQ(std::memcmp(DecRotated.Digits[Digit].component(Digit),
                          Permuted.component(Digit),
                          N * sizeof(uint64_t)),
              0)
        << "digit " << Digit;
  }
}

/// Telemetry proof of the hoisting: a batch of eight rotations performs
/// exactly ONE digit decomposition (ModUp) while still reporting eight
/// rotations / key switches; the sequential loop pays eight ModUps.
TEST_F(HoistedRotationTest, TelemetryCountsOneModUpPerBatch) {
  Rng R(19);
  Ciphertext In = randomCiphertext(R, Ctx.chainLength());
  std::vector<int64_t> Steps = {1, 2, 3, 5, 7, 17, 31, 64};

  Telemetry::instance().setEnabled(true);
  CounterSnapshot Before = Telemetry::instance().counters();
  std::vector<Ciphertext> Batch = Eval->rotateHoisted(In, Steps);
  CounterSnapshot Hoisted =
      Telemetry::instance().counters().deltaSince(Before);
  EXPECT_EQ(Hoisted.get(Counter::ModUp), 1u);
  EXPECT_EQ(Hoisted.get(Counter::HoistedKeySwitch), Steps.size());
  EXPECT_EQ(Hoisted.get(Counter::Rotate), Steps.size());
  EXPECT_EQ(Hoisted.get(Counter::KeySwitch), Steps.size());

  Before = Telemetry::instance().counters();
  for (int64_t S : Steps)
    Eval->rotate(In, S);
  CounterSnapshot Sequential =
      Telemetry::instance().counters().deltaSince(Before);
  EXPECT_EQ(Sequential.get(Counter::ModUp), Steps.size());
  EXPECT_EQ(Sequential.get(Counter::HoistedKeySwitch), 0u);
  EXPECT_EQ(Sequential.get(Counter::Rotate), Steps.size());
  EXPECT_EQ(Sequential.get(Counter::KeySwitch), Steps.size());
}

/// The bootstrapper's BSGS baby steps share ModUps: every key switch
/// that is NOT hoisted pays one decomposition, so the number of hoisted
/// batches is ModUp - (KeySwitch - HoistedKeySwitch), and sharing means
/// strictly more hoisted rotations than batches.
TEST(HoistedRotationBootstrap, BabyStepsShareOneModUpPerBatch) {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 32;
  P.LogScale = 48;
  P.LogFirstModulus = 57;
  P.NumRescaleModuli = 24;
  P.LogSpecialModulus = 60;
  P.SparseSecret = true;
  P.Seed = 29;
  Context Ctx(P);
  Encoder Enc(Ctx);
  KeyGenerator Gen(Ctx);
  PublicKey Pub = Gen.makePublicKey();
  EvalKeys Keys;
  Evaluator Eval(Ctx, Enc, Keys);
  Bootstrapper Boot(Eval, BootstrapConfig{/*RangeK=*/12,
                                          /*DoubleAngleCount=*/2,
                                          /*ChebyshevDegree=*/39,
                                          /*ArcsineCorrection=*/true});
  Gen.fillEvalKeys(Keys, Boot.requiredRotations(), /*NeedRelin=*/true,
                   Boot.needsConjugation());
  Gen.fillGaloisKeys(Keys, Boot.requiredGaloisElements());
  Encryptor Encrypt(Ctx, Pub);

  Rng R(5);
  std::vector<double> X(Ctx.slots());
  for (auto &V : X)
    V = R.uniformReal(-0.5, 0.5);
  Ciphertext In = Encrypt.encryptValues(Enc, X, 1);

  Telemetry::instance().setEnabled(true);
  CounterSnapshot Before = Telemetry::instance().counters();
  Ciphertext Out = Boot.bootstrap(In, /*TargetNumQ=*/3);
  CounterSnapshot D = Telemetry::instance().counters().deltaSince(Before);
  Telemetry::instance().setEnabled(false);
  Telemetry::instance().clear();

  ASSERT_GT(D.get(Counter::HoistedKeySwitch), 0u);
  ASSERT_GE(D.get(Counter::KeySwitch), D.get(Counter::HoistedKeySwitch));
  uint64_t UnhoistedModUps =
      D.get(Counter::KeySwitch) - D.get(Counter::HoistedKeySwitch);
  ASSERT_GE(D.get(Counter::ModUp), UnhoistedModUps);
  uint64_t Batches = D.get(Counter::ModUp) - UnhoistedModUps;
  EXPECT_GE(Batches, 1u);
  // Sharing: each CoeffToSlot/SlotToCoeff matvec hoists BS-1 >= 2
  // rotations into one decomposition.
  EXPECT_GT(D.get(Counter::HoistedKeySwitch), Batches);
  // The digit counter still dominates key switches (golden invariant).
  EXPECT_GT(D.get(Counter::KeySwitchDigit), D.get(Counter::KeySwitch));
}

} // namespace
