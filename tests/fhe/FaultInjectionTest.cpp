//===----------------------------------------------------------------------===//
// Fault-injection property tests (ISSUE tentpole 3): every injected
// fault must surface as a clean error - through the C++ checked tier and
// through the C API's error channel - never undefined behavior and never
// a silently wrong result. The suite runs in debug AND in the CI's
// release (-DNDEBUG) sanitizer build, where asserts vanish and only the
// checked tier stands between a corrupted ciphertext and UB.
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"
#include "fhe/CApi.h"
#include "fhe/Encryptor.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ace;
using namespace ace::fhe;

namespace {

/// Shared C-API context; every test starts and ends with the injector
/// disarmed so a failing expectation cannot poison its neighbors.
class FaultInjectionTest : public ::testing::Test {
protected:
  AceFheContext *Ctx = nullptr;

  void SetUp() override {
    FaultInjector::instance().reset();
    ace_clear_error();
    Ctx = ace_create(/*ring_degree=*/1024, /*slots=*/64, /*log_scale=*/45,
                     /*log_q0=*/55, /*num_rescale=*/8, /*log_special=*/60,
                     /*sparse_secret=*/0, /*seed=*/11);
    ASSERT_NE(Ctx, nullptr);
    int64_t Steps[] = {1};
    ASSERT_EQ(ace_keygen(Ctx, Steps, nullptr, 1, /*need_relin=*/1,
                         /*need_conj=*/0, /*bootstrap=*/0, 12, 2, 39),
              ACE_OK);
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    ace_destroy(Ctx);
  }

  AceFheCiphertext *encrypt(double Value, size_t NumQ = 9) {
    std::vector<double> X(64, Value);
    return ace_encrypt(Ctx, X.data(), X.size(), NumQ);
  }
};

TEST_F(FaultInjectionTest, ScaleDriftIsCaughtAtTheCApiBoundary) {
  // ace_encrypt checks its own postcondition (fresh ciphertexts are at
  // the context scale): a drifted scale must not escape the boundary.
  // In a generated program every ciphertext derives from the encrypted
  // inputs and downstream plaintext encodes adapt to the recorded scale,
  // so a drift that escaped here would flow through a purely linear
  // pipeline silently.
  FaultInjector::instance().arm(FaultKind::ScaleDrift);
  AceFheCiphertext *Drifted = encrypt(0.25);
  EXPECT_EQ(Drifted, nullptr);
  EXPECT_EQ(FaultInjector::instance().firedCount(FaultKind::ScaleDrift),
            1u);
  EXPECT_EQ(ace_last_error(), ACE_ERR_SCALE_MISMATCH);
  // The diagnostic must name both scales and their ratio.
  std::string Msg = ace_last_error_message();
  EXPECT_NE(Msg.find("ratio"), std::string::npos) << Msg;

  // With the injector quiet, encryption and arithmetic work again.
  FaultInjector::instance().reset();
  ace_clear_error();
  AceFheCiphertext *A = encrypt(0.25);
  AceFheCiphertext *B = encrypt(0.5);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  AceFheCiphertext *Sum = ace_add(Ctx, A, B);
  EXPECT_NE(Sum, nullptr) << ace_last_error_message();
  ace_ct_free(Sum);
  ace_ct_free(A);
  ace_ct_free(B);
}

TEST_F(FaultInjectionTest, CorruptedSlotCountIsRejected) {
  FaultInjector::instance().arm(FaultKind::SlotCorrupt);
  AceFheCiphertext *Bad = encrypt(0.25);
  ASSERT_NE(Bad, nullptr);

  EXPECT_EQ(ace_rescale(Ctx, Bad), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INVALID_ARGUMENT);
  std::string Msg = ace_last_error_message();
  EXPECT_NE(Msg.find("slot"), std::string::npos) << Msg;

  ace_ct_free(Bad);
}

TEST_F(FaultInjectionTest, TruncatedPrimeChainIsRejected) {
  FaultInjector::instance().arm(FaultKind::TruncateChain);
  AceFheCiphertext *Bad = encrypt(0.25);
  ASSERT_NE(Bad, nullptr);

  // One polynomial lost a prime: the ciphertext is internally
  // inconsistent and must not reach the NTT kernels.
  EXPECT_EQ(ace_mul_const(Ctx, Bad, 2.0), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_INTERNAL);
  std::string Msg = ace_last_error_message();
  EXPECT_NE(Msg.find("truncated"), std::string::npos) << Msg;

  // Decryption validates the same invariant instead of indexing out of
  // bounds.
  std::vector<double> Out(64);
  EXPECT_EQ(ace_decrypt(Ctx, Bad, Out.data(), 64), ACE_ERR_INTERNAL);

  ace_ct_free(Bad);
}

TEST_F(FaultInjectionTest, DroppedGaloisKeySurfacesAsKeyMissing) {
  AceFheCiphertext *Ct = encrypt(0.25);
  ASSERT_NE(Ct, nullptr);
  // Step 1 has a key; the injected drop must still fail the lookup.
  FaultInjector::instance().arm(FaultKind::DropGaloisKey);
  EXPECT_EQ(ace_rotate(Ctx, Ct, 1), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_KEY_MISSING);

  // The drop was one-shot: the same rotation succeeds afterwards.
  AceFheCiphertext *R = ace_rotate(Ctx, Ct, 1);
  EXPECT_NE(R, nullptr);
  ace_ct_free(R);
  ace_ct_free(Ct);
}

TEST_F(FaultInjectionTest, DroppedRelinKeySurfacesAsKeyMissing) {
  AceFheCiphertext *Ct = encrypt(0.25);
  ASSERT_NE(Ct, nullptr);
  FaultInjector::instance().arm(FaultKind::DropRelinKey);
  EXPECT_EQ(ace_mul(Ctx, Ct, Ct), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_KEY_MISSING);
  ace_ct_free(Ct);
}

TEST_F(FaultInjectionTest, AllocFailureSurfacesAsResourceExhausted) {
  AceFheCiphertext *Ct = encrypt(0.25);
  ASSERT_NE(Ct, nullptr);
  FaultInjector::instance().arm(FaultKind::AllocFail);
  EXPECT_EQ(ace_add_const(Ctx, Ct, 1.0), nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_RESOURCE_EXHAUSTED);
  ace_ct_free(Ct);
}

TEST_F(FaultInjectionTest, EveryFaultKindFailsCleanlyInSequence) {
  // Sweep all kinds through one arm -> trigger -> verify cycle; whatever
  // the kind, the outcome is an error code, not a crash or wrong value.
  const FaultKind Kinds[] = {FaultKind::ScaleDrift, FaultKind::SlotCorrupt,
                             FaultKind::TruncateChain,
                             FaultKind::DropGaloisKey,
                             FaultKind::DropRelinKey, FaultKind::AllocFail};
  for (FaultKind Kind : Kinds) {
    FaultInjector::instance().reset();
    ace_clear_error();
    // One firing: exactly one operand (or one lookup) is corrupted, so
    // the fault cannot cancel itself out (two equally drifted scales
    // would compare equal again).
    FaultInjector::instance().arm(Kind, /*Count=*/1);

    AceFheCiphertext *A = encrypt(0.25);
    AceFheCiphertext *B = encrypt(0.5);
    AceFheCiphertext *Results[4] = {nullptr, nullptr, nullptr, nullptr};
    if (A && B) {
      Results[0] = ace_add(Ctx, A, B);
      Results[1] = ace_mul(Ctx, A, B);
      Results[2] = ace_rotate(Ctx, A, 1);
      Results[3] = ace_rescale(Ctx, A);
    }
    bool AnyFailed = !A || !B;
    for (auto *R : Results)
      AnyFailed = AnyFailed || R == nullptr;
    EXPECT_TRUE(AnyFailed) << "fault " << faultKindName(Kind)
                           << " was swallowed";
    if (AnyFailed) {
      EXPECT_NE(ace_last_error(), ACE_OK) << faultKindName(Kind);
      EXPECT_STRNE(ace_last_error_message(), "") << faultKindName(Kind);
    }
    for (auto *R : Results)
      ace_ct_free(R);
    ace_ct_free(A);
    ace_ct_free(B);
  }
}

TEST_F(FaultInjectionTest, PipelineRecoversAfterReset) {
  // Inject, observe the failure, reset - then the exact same pipeline
  // must produce the correct answer: faults leave no residue.
  FaultInjector::instance().arm(FaultKind::ScaleDrift);
  AceFheCiphertext *Bad = encrypt(0.5);
  EXPECT_EQ(Bad, nullptr);
  EXPECT_EQ(ace_last_error(), ACE_ERR_SCALE_MISMATCH);
  ace_ct_free(Bad);

  FaultInjector::instance().reset();
  ace_clear_error();

  AceFheCiphertext *A = encrypt(0.5);
  AceFheCiphertext *B = encrypt(0.25);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  AceFheCiphertext *Sum = ace_add(Ctx, A, B);
  ASSERT_NE(Sum, nullptr);
  AceFheCiphertext *Prod = ace_mul(Ctx, Sum, B);
  ASSERT_NE(Prod, nullptr);
  AceFheCiphertext *Res = ace_rescale(Ctx, Prod);
  ASSERT_NE(Res, nullptr);

  std::vector<double> Out(64);
  ASSERT_EQ(ace_decrypt(Ctx, Res, Out.data(), 64), ACE_OK);
  for (double V : Out)
    EXPECT_NEAR(V, (0.5 + 0.25) * 0.25, 1e-4); // no silent wrong result

  for (auto *Ct : {A, B, Sum, Prod, Res})
    ace_ct_free(Ct);
}

TEST_F(FaultInjectionTest, CheckedCxxTierReportsTheSameFaults) {
  // The C++ checked tier (what CkksExecutor runs on) must classify the
  // same injected faults without going through the C boundary.
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 64;
  P.LogScale = 45;
  P.LogFirstModulus = 55;
  P.NumRescaleModuli = 8;
  P.LogSpecialModulus = 60;
  P.SparseSecret = false;
  P.Seed = 17;
  ASSERT_TRUE(P.valid());
  Context Local(P);
  Encoder Enc(Local);
  KeyGenerator Gen(Local);
  PublicKey Pub = Gen.makePublicKey();
  EvalKeys Keys;
  Gen.fillEvalKeys(Keys, {1}, /*NeedRelin=*/true, /*NeedConjugate=*/false);
  Evaluator Eval(Local, Enc, Keys);
  Encryptor Encrypt(Local, Pub);

  std::vector<double> X(64, 0.25);

  FaultInjector::instance().arm(FaultKind::ScaleDrift);
  auto Drifted = Encrypt.checkedEncryptValues(Enc, X, 9);
  ASSERT_TRUE(Drifted.ok());
  auto Clean = Encrypt.checkedEncryptValues(Enc, X, 9);
  ASSERT_TRUE(Clean.ok());
  auto Sum = Eval.checkedAdd(*Drifted, *Clean);
  ASSERT_FALSE(Sum.ok());
  EXPECT_EQ(Sum.status().code(), ErrorCode::ScaleMismatch);

  FaultInjector::instance().reset();
  FaultInjector::instance().arm(FaultKind::DropGaloisKey);
  auto Rot = Eval.checkedRotate(*Clean, 1);
  ASSERT_FALSE(Rot.ok());
  EXPECT_EQ(Rot.status().code(), ErrorCode::KeyMissing);

  FaultInjector::instance().reset();
  auto RotOk = Eval.checkedRotate(*Clean, 1);
  EXPECT_TRUE(RotOk.ok());
}

} // namespace
