//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Regression corpus for the wire-format deserializers: every blob under
// tests/corpus/wire/ is a once-valid object with one targeted corruption,
// and the MANIFEST pins the loader, the exact error code, and a
// diagnostic substring each must produce. This freezes the deserializer's
// error behavior: a refactor that turns a clean rejection into a crash,
// a wrong code, or a vague message fails here. Regenerate the corpus
// with the make_wire_corpus tool after intentional format changes.
//
//===----------------------------------------------------------------------===//

#include "fhe/Serializer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ace;
using namespace ace::fhe;

#ifndef ACE_CORPUS_DIR
#error "ACE_CORPUS_DIR must point at tests/corpus/wire"
#endif

namespace {

/// Must match the fuzz-context parameters the corpus was generated under
/// (tests/make_wire_corpus.cpp, fuzz/fuzz_deserialize.cpp).
const Context &corpusContext() {
  static Context *Ctx = [] {
    CkksParams P;
    P.RingDegree = 32;
    P.Slots = 8;
    P.LogScale = 30;
    P.LogFirstModulus = 40;
    P.NumRescaleModuli = 2;
    P.LogSpecialModulus = 45;
    P.Seed = 7;
    return new Context(P);
  }();
  return *Ctx;
}

std::vector<uint8_t> readHex(const std::string &Path, bool &Ok) {
  std::ifstream IS(Path);
  Ok = static_cast<bool>(IS);
  std::vector<uint8_t> Out;
  std::string Line;
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    return -1;
  };
  while (std::getline(IS, Line)) {
    for (size_t I = 0; I + 1 < Line.size(); I += 2) {
      int Hi = Nibble(Line[I]), Lo = Nibble(Line[I + 1]);
      if (Hi < 0 || Lo < 0) {
        Ok = false;
        return Out;
      }
      Out.push_back(static_cast<uint8_t>(Hi << 4 | Lo));
    }
  }
  return Out;
}

/// Feeds \p Blob to the loader named in the manifest and returns its
/// Status (success Status for an unexpectedly clean parse).
Status runLoader(const std::string &Loader,
                 const std::vector<uint8_t> &Blob) {
  const Context &Ctx = corpusContext();
  const uint8_t *D = Blob.data();
  size_t N = Blob.size();
  if (Loader == "params")
    return wire::loadParams(D, N).status();
  if (Loader == "plaintext")
    return wire::loadPlaintext(Ctx, D, N).status();
  if (Loader == "ciphertext")
    return wire::loadCiphertext(Ctx, D, N).status();
  if (Loader == "publickey")
    return wire::loadPublicKey(Ctx, D, N).status();
  if (Loader == "secretkey")
    return wire::loadSecretKey(Ctx, D, N).status();
  if (Loader == "switchkey")
    return wire::loadSwitchKey(Ctx, D, N).status();
  if (Loader == "evalkeys")
    return wire::loadEvalKeys(Ctx, D, N).status();
  return Status::internal("corpus MANIFEST names unknown loader '" +
                          Loader + "'");
}

struct ManifestEntry {
  std::string File, Loader, Code, Substring;
};

std::vector<ManifestEntry> readManifest(const std::string &Dir) {
  std::vector<ManifestEntry> Entries;
  std::ifstream IS(Dir + "/MANIFEST");
  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    ManifestEntry E;
    std::getline(LS, E.File, '\t');
    std::getline(LS, E.Loader, '\t');
    std::getline(LS, E.Code, '\t');
    std::getline(LS, E.Substring);
    Entries.push_back(std::move(E));
  }
  return Entries;
}

TEST(SerializerCorpusTest, EveryBlobFailsWithItsPinnedError) {
  const std::string Dir = ACE_CORPUS_DIR;
  auto Entries = readManifest(Dir);
  ASSERT_GE(Entries.size(), 15u)
      << "corpus manifest missing or implausibly small: " << Dir;
  for (const auto &E : Entries) {
    bool Ok = false;
    auto Blob = readHex(Dir + "/" + E.File + ".hex", Ok);
    ASSERT_TRUE(Ok) << "cannot read corpus blob " << E.File;
    Status S = runLoader(E.Loader, Blob);
    ASSERT_FALSE(S.ok()) << E.File << ": malformed blob parsed cleanly";
    EXPECT_STREQ(errorCodeName(S.code()), E.Code.c_str())
        << E.File << ": " << S.message();
    EXPECT_NE(S.message().find(E.Substring), std::string::npos)
        << E.File << ": diagnostic \"" << S.message()
        << "\" lacks pinned substring \"" << E.Substring << "\"";
  }
}

TEST(SerializerCorpusTest, StreamPathAgreesWithBufferPath) {
  // Both load paths share one validator; the corpus must fail identically
  // through std::istream.
  const std::string Dir = ACE_CORPUS_DIR;
  const Context &Ctx = corpusContext();
  for (const auto &E : readManifest(Dir)) {
    if (E.Loader != "ciphertext")
      continue;
    // Trailing bytes are legal on a stream (objects concatenate there),
    // so that case intentionally diverges from the buffer path.
    if (E.File == "trailing-bytes")
      continue;
    bool Ok = false;
    auto Blob = readHex(Dir + "/" + E.File + ".hex", Ok);
    ASSERT_TRUE(Ok);
    std::istringstream IS(
        std::string(reinterpret_cast<const char *>(Blob.data()),
                    Blob.size()));
    auto R = wire::loadCiphertext(Ctx, IS);
    ASSERT_FALSE(R.ok()) << E.File;
    EXPECT_STREQ(errorCodeName(R.status().code()), E.Code.c_str())
        << E.File << ": " << R.status().message();
  }
}

} // namespace
