//===----------------------------------------------------------------------===//
// Encryption round-trip and homomorphism tests: Dec(Enc(x)) ~= x,
// Dec(Enc(x) + Enc(y)) ~= x + y (Sec. 2.1's defining equations).
//===----------------------------------------------------------------------===//

#include "fhe/Encryptor.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

CkksParams testParams(size_t N = 1024, size_t Slots = 256) {
  CkksParams P;
  P.RingDegree = N;
  P.Slots = Slots;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = 4;
  P.LogSpecialModulus = 59;
  P.Seed = 7;
  return P;
}

std::vector<double> randomReals(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> V(N);
  for (auto &X : V)
    X = R.uniformReal(-1.0, 1.0);
  return V;
}

class EncryptFixture : public ::testing::Test {
protected:
  EncryptFixture()
      : Ctx(testParams()), Enc(Ctx), Gen(Ctx), Pub(Gen.makePublicKey()),
        Encryptor_(Ctx, Pub), Decryptor_(Ctx, Gen.secretKey()) {}

  Context Ctx;
  Encoder Enc;
  KeyGenerator Gen;
  PublicKey Pub;
  Encryptor Encryptor_;
  Decryptor Decryptor_;
};

TEST_F(EncryptFixture, RoundTrip) {
  auto Values = randomReals(Ctx.slots(), 31);
  Ciphertext Ct = Encryptor_.encryptValues(Enc, Values, Ctx.chainLength());
  auto Decrypted = Decryptor_.decryptRealValues(Enc, Ct);
  ASSERT_EQ(Decrypted.size(), Ctx.slots());
  for (size_t I = 0; I < Values.size(); ++I)
    EXPECT_NEAR(Decrypted[I], Values[I], 1e-6);
}

TEST_F(EncryptFixture, CiphertextDiffersFromPlain) {
  // Sanity: c0 must not literally contain the plaintext polynomial.
  auto Values = randomReals(Ctx.slots(), 37);
  Plaintext P = Enc.encodeReal(Values, Ctx.scale(), Ctx.chainLength());
  Ciphertext Ct = Encryptor_.encrypt(P);
  RnsPoly C0 = Ct.Polys[0];
  C0.toCoeff();
  auto Direct = Enc.decode(C0, Ct.Scale);
  double MaxErr = 0;
  for (size_t I = 0; I < Values.size(); ++I)
    MaxErr = std::max(MaxErr, std::abs(Direct[I].real() - Values[I]));
  EXPECT_GT(MaxErr, 0.1) << "c0 leaks the message";
}

TEST_F(EncryptFixture, FreshNoiseIsSmall) {
  auto Values = randomReals(Ctx.slots(), 41);
  Ciphertext Ct = Encryptor_.encryptValues(Enc, Values, Ctx.chainLength());
  auto Decrypted = Decryptor_.decryptRealValues(Enc, Ct);
  double MaxErr = 0;
  for (size_t I = 0; I < Values.size(); ++I)
    MaxErr = std::max(MaxErr, std::abs(Decrypted[I] - Values[I]));
  // Fresh noise over Delta = 2^40 should stay well below 2^-20.
  EXPECT_LT(MaxErr, 1e-6);
}

TEST_F(EncryptFixture, HomomorphicAdditionOfRawCiphertexts) {
  auto X = randomReals(Ctx.slots(), 43);
  auto Y = randomReals(Ctx.slots(), 47);
  Ciphertext CX = Encryptor_.encryptValues(Enc, X, Ctx.chainLength());
  Ciphertext CY = Encryptor_.encryptValues(Enc, Y, Ctx.chainLength());
  // Dec(Enc(x) (+) Enc(y)) = x + y, using raw polynomial addition.
  CX.Polys[0].addInPlace(CY.Polys[0]);
  CX.Polys[1].addInPlace(CY.Polys[1]);
  auto Sum = Decryptor_.decryptRealValues(Enc, CX);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Sum[I], X[I] + Y[I], 1e-6);
}

TEST_F(EncryptFixture, EncryptAtLowerLevel) {
  auto Values = randomReals(Ctx.slots(), 53);
  Ciphertext Ct = Encryptor_.encryptValues(Enc, Values, 2);
  EXPECT_EQ(Ct.numQ(), 2u);
  auto Decrypted = Decryptor_.decryptRealValues(Enc, Ct);
  for (size_t I = 0; I < Values.size(); ++I)
    EXPECT_NEAR(Decrypted[I], Values[I], 1e-6);
}

TEST_F(EncryptFixture, DistinctEncryptionsDiffer) {
  auto Values = randomReals(Ctx.slots(), 59);
  Plaintext P = Enc.encodeReal(Values, Ctx.scale(), 2);
  Ciphertext A = Encryptor_.encrypt(P);
  Ciphertext B = Encryptor_.encrypt(P);
  // Randomized encryption: identical plaintexts yield distinct
  // ciphertexts (compare a few residues of c1).
  bool AnyDiff = false;
  for (size_t J = 0; J < 16; ++J)
    AnyDiff |= A.Polys[1].component(0)[J] != B.Polys[1].component(0)[J];
  EXPECT_TRUE(AnyDiff);
}

TEST(EncryptSparseSecretTest, SparseSecretRoundTrip) {
  CkksParams P = testParams();
  P.SparseSecret = true;
  Context Ctx(P);
  Encoder Enc(Ctx);
  KeyGenerator Gen(Ctx);
  PublicKey Pub = Gen.makePublicKey();
  Encryptor E(Ctx, Pub);
  Decryptor D(Ctx, Gen.secretKey());
  auto Values = randomReals(Ctx.slots(), 61);
  Ciphertext Ct = E.encryptValues(Enc, Values, Ctx.chainLength());
  auto Decrypted = D.decryptRealValues(Enc, Ct);
  for (size_t I = 0; I < Values.size(); ++I)
    EXPECT_NEAR(Decrypted[I], Values[I], 1e-6);
}

} // namespace
