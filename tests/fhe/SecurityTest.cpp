//===----------------------------------------------------------------------===//
// Security-table and bootstrap-depth-estimate tests: the inputs to the
// compiler's automatic parameter selection (paper Table 10).
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"
#include "fhe/Security.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

TEST(SecurityTest, HeStandardAnchorValues) {
  // Anchor rows of the HE standard (ternary secret, classical security).
  EXPECT_EQ(maxLogQ(4096, SecurityLevelKind::SL_128), 109);
  EXPECT_EQ(maxLogQ(16384, SecurityLevelKind::SL_128), 438);
  EXPECT_EQ(maxLogQ(32768, SecurityLevelKind::SL_128), 881);
  EXPECT_EQ(maxLogQ(65536, SecurityLevelKind::SL_128), 1772);
  // Stricter levels shrink the budget.
  EXPECT_LT(maxLogQ(32768, SecurityLevelKind::SL_192),
            maxLogQ(32768, SecurityLevelKind::SL_128));
  EXPECT_LT(maxLogQ(32768, SecurityLevelKind::SL_256),
            maxLogQ(32768, SecurityLevelKind::SL_192));
}

TEST(SecurityTest, NonStandardDegreesHaveNoBudget) {
  EXPECT_EQ(maxLogQ(512, SecurityLevelKind::SL_128), 0);
  EXPECT_EQ(maxLogQ(3000, SecurityLevelKind::SL_128), 0);
}

TEST(SecurityTest, MinRingDegreeSelection) {
  // The paper's Table 10 case: a ~1700-bit chain needs N = 2^16.
  EXPECT_EQ(minRingDegreeFor(1700, SecurityLevelKind::SL_128), 65536u);
  EXPECT_EQ(minRingDegreeFor(100, SecurityLevelKind::SL_128), 4096u);
  EXPECT_EQ(minRingDegreeFor(1800, SecurityLevelKind::SL_128), 131072u);
  // Toy mode: anything goes.
  EXPECT_EQ(minRingDegreeFor(100000, SecurityLevelKind::SL_None), 8u);
}

TEST(SecurityTest, BootstrapDepthEstimateTracksSpan) {
  BootstrapConfig Cfg;
  // Fewer slots -> larger span -> more double-angle levels.
  int Sparse = estimateBootstrapDepth(4096, 64, Cfg, 45, 55);
  int Dense = estimateBootstrapDepth(4096, 2048, Cfg, 45, 55);
  EXPECT_GT(Sparse, Dense);
  EXPECT_GT(Dense, 8);
  EXPECT_LT(Sparse, 40);
}

} // namespace
