//===----------------------------------------------------------------------===//
// Evaluator tests: every CKKS-IR operation (paper Table 6) checked against
// the plaintext semantics, including multiplication + relinearization +
// rescale chains, rotations through key switching, and scale management.
//===----------------------------------------------------------------------===//

#include "fhe/Evaluator.h"

#include "fhe/Encryptor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

CkksParams testParams() {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 128;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = 6;
  P.LogSpecialModulus = 59;
  P.Seed = 77;
  return P;
}

std::vector<double> randomReals(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> V(N);
  for (auto &X : V)
    X = R.uniformReal(-1.0, 1.0);
  return V;
}

class EvaluatorFixture : public ::testing::Test {
protected:
  EvaluatorFixture()
      : Ctx(testParams()), Enc(Ctx), Gen(Ctx), Pub(Gen.makePublicKey()) {
    Gen.fillEvalKeys(Keys, {1, 2, 3, 7, -1}, /*NeedRelin=*/true,
                     /*NeedConjugate=*/true);
    Eval = std::make_unique<Evaluator>(Ctx, Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(Ctx, Pub);
    Decrypt = std::make_unique<Decryptor>(Ctx, Gen.secretKey());
  }

  std::vector<double> decryptReal(const Ciphertext &Ct) {
    return Decrypt->decryptRealValues(Enc, Ct);
  }

  Ciphertext encrypt(const std::vector<double> &V,
                     size_t NumQ = static_cast<size_t>(-1)) {
    if (NumQ == static_cast<size_t>(-1))
      NumQ = Ctx.chainLength();
    return Encrypt->encryptValues(Enc, V, NumQ);
  }

  Context Ctx;
  Encoder Enc;
  KeyGenerator Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

TEST_F(EvaluatorFixture, AddSub) {
  auto X = randomReals(Ctx.slots(), 1);
  auto Y = randomReals(Ctx.slots(), 2);
  Ciphertext CX = encrypt(X), CY = encrypt(Y);
  auto Sum = decryptReal(Eval->add(CX, CY));
  auto Diff = decryptReal(Eval->sub(CX, CY));
  for (size_t I = 0; I < X.size(); ++I) {
    EXPECT_NEAR(Sum[I], X[I] + Y[I], 1e-6);
    EXPECT_NEAR(Diff[I], X[I] - Y[I], 1e-6);
  }
}

TEST_F(EvaluatorFixture, Negate) {
  auto X = randomReals(Ctx.slots(), 3);
  auto Neg = decryptReal(Eval->negate(encrypt(X)));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Neg[I], -X[I], 1e-6);
}

TEST_F(EvaluatorFixture, AddPlain) {
  auto X = randomReals(Ctx.slots(), 4);
  auto Y = randomReals(Ctx.slots(), 5);
  Ciphertext CX = encrypt(X);
  Plaintext PY = Eval->encodeForAdd(CX, Y);
  auto Sum = decryptReal(Eval->addPlain(CX, PY));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Sum[I], X[I] + Y[I], 1e-6);
}

TEST_F(EvaluatorFixture, AddConst) {
  auto X = randomReals(Ctx.slots(), 6);
  Ciphertext CX = encrypt(X);
  Eval->addConstInPlace(CX, 0.5);
  auto Out = decryptReal(CX);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I] + 0.5, 1e-6);
}

TEST_F(EvaluatorFixture, MulPlainWithRescalePreservesScale) {
  auto X = randomReals(Ctx.slots(), 7);
  auto Y = randomReals(Ctx.slots(), 8);
  Ciphertext CX = encrypt(X);
  double ScaleBefore = CX.Scale;
  Plaintext PY = Eval->encodeForMul(CX, Y);
  Ciphertext Prod = Eval->mulPlain(CX, PY);
  Eval->rescaleInPlace(Prod);
  EXPECT_DOUBLE_EQ(Prod.Scale, ScaleBefore);
  EXPECT_EQ(Prod.numQ(), CX.numQ() - 1);
  auto Out = decryptReal(Prod);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I] * Y[I], 1e-5);
}

TEST_F(EvaluatorFixture, MulCipherRelinRescale) {
  auto X = randomReals(Ctx.slots(), 9);
  auto Y = randomReals(Ctx.slots(), 10);
  Ciphertext CX = encrypt(X), CY = encrypt(Y);
  Ciphertext Prod = Eval->mul(CX, CY);
  EXPECT_EQ(Prod.size(), 2u);
  Eval->rescaleInPlace(Prod);
  auto Out = decryptReal(Prod);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I] * Y[I], 1e-4);
}

TEST_F(EvaluatorFixture, Cipher3DecryptsBeforeRelin) {
  auto X = randomReals(Ctx.slots(), 11);
  auto Y = randomReals(Ctx.slots(), 12);
  Ciphertext Prod = Eval->mulNoRelin(encrypt(X), encrypt(Y));
  EXPECT_EQ(Prod.size(), 3u); // the paper's Cipher3
  auto Out = decryptReal(Prod);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I] * Y[I], 1e-4);
}

TEST_F(EvaluatorFixture, MultiplicativeDepthChain) {
  // Square repeatedly down the modulus chain: x^(2^depth).
  std::vector<double> X(Ctx.slots(), 0.9);
  Ciphertext Ct = encrypt(X);
  double Expected = 0.9;
  for (int Depth = 0; Depth < 4; ++Depth) {
    Ct = Eval->mul(Ct, Ct);
    Eval->rescaleInPlace(Ct);
    Expected *= Expected;
  }
  auto Out = decryptReal(Ct);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], Expected, 1e-3);
}

TEST_F(EvaluatorFixture, MulScalar) {
  auto X = randomReals(Ctx.slots(), 13);
  Ciphertext CX = encrypt(X);
  Ciphertext Scaled = Eval->mulScalar(CX, -2.5);
  Eval->rescaleInPlace(Scaled);
  auto Out = decryptReal(Scaled);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], -2.5 * X[I], 1e-5);
}

TEST_F(EvaluatorFixture, MulInteger) {
  auto X = randomReals(Ctx.slots(), 14);
  Ciphertext CX = encrypt(X);
  Eval->mulIntegerInPlace(CX, -3);
  auto Out = decryptReal(CX);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], -3 * X[I], 1e-5);
}

TEST_F(EvaluatorFixture, MulByI) {
  auto Values = randomReals(Ctx.slots(), 15);
  Ciphertext Ct = encrypt(Values);
  Ciphertext Rotated = Eval->mulByI(Ct);
  auto Out = Decrypt->decryptValues(Enc, Rotated);
  for (size_t I = 0; I < Values.size(); ++I) {
    EXPECT_NEAR(Out[I].real(), 0.0, 1e-6);
    EXPECT_NEAR(Out[I].imag(), Values[I], 1e-6);
  }
}

TEST_F(EvaluatorFixture, RotationMatchesCyclicShift) {
  auto X = randomReals(Ctx.slots(), 16);
  Ciphertext CX = encrypt(X);
  for (int64_t Step : {1, 2, 7}) {
    auto Out = decryptReal(Eval->rotate(CX, Step));
    for (size_t I = 0; I < X.size(); ++I)
      EXPECT_NEAR(Out[I], X[(I + Step) % Ctx.slots()], 1e-5)
          << "step " << Step;
  }
}

TEST_F(EvaluatorFixture, NegativeRotation) {
  auto X = randomReals(Ctx.slots(), 17);
  auto Out = decryptReal(Eval->rotate(encrypt(X), -1));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[(I + Ctx.slots() - 1) % Ctx.slots()], 1e-5);
}

TEST_F(EvaluatorFixture, RotateByZeroIsIdentity) {
  auto X = randomReals(Ctx.slots(), 18);
  auto Out = decryptReal(Eval->rotate(encrypt(X), 0));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 1e-6);
}

TEST_F(EvaluatorFixture, Conjugate) {
  Rng R(19);
  std::vector<std::complex<double>> Values(Ctx.slots());
  for (auto &V : Values)
    V = {R.uniformReal(-1, 1), R.uniformReal(-1, 1)};
  Plaintext P = Enc.encode(Values, Ctx.scale(), Ctx.chainLength());
  Ciphertext Ct = Encrypt->encrypt(P);
  auto Out = Decrypt->decryptValues(Enc, Eval->conjugate(Ct));
  for (size_t I = 0; I < Values.size(); ++I)
    EXPECT_NEAR(std::abs(Out[I] - std::conj(Values[I])), 0.0, 1e-5);
}

TEST_F(EvaluatorFixture, ModSwitchPreservesMessage) {
  auto X = randomReals(Ctx.slots(), 20);
  Ciphertext CX = encrypt(X);
  Eval->modSwitchTo(CX, 2);
  EXPECT_EQ(CX.numQ(), 2u);
  auto Out = decryptReal(CX);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 1e-6);
}

TEST_F(EvaluatorFixture, UpscalePreservesValues) {
  auto X = randomReals(Ctx.slots(), 21);
  Ciphertext CX = encrypt(X);
  double OldScale = CX.Scale;
  Eval->upscaleInPlace(CX, 5);
  EXPECT_DOUBLE_EQ(CX.Scale, OldScale * 32);
  auto Out = decryptReal(CX);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 1e-6);
}

TEST_F(EvaluatorFixture, DownscaleHitsTarget) {
  auto X = randomReals(Ctx.slots(), 22);
  Ciphertext CX = encrypt(X);
  Eval->upscaleInPlace(CX, 6); // push the scale off the waterline
  double Target = Ctx.scale();
  Eval->downscaleInPlace(CX, Target);
  EXPECT_TRUE(scalesClose(CX.Scale, Target));
  auto Out = decryptReal(CX);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 1e-5);
}

TEST_F(EvaluatorFixture, MatchForAddAlignsLevels) {
  auto X = randomReals(Ctx.slots(), 23);
  auto Y = randomReals(Ctx.slots(), 24);
  Ciphertext CX = encrypt(X);
  Ciphertext CY = encrypt(Y, 3);
  Eval->matchForAdd(CX, CY);
  EXPECT_EQ(CX.numQ(), CY.numQ());
  auto Out = decryptReal(Eval->add(CX, CY));
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I] + Y[I], 1e-6);
}

TEST_F(EvaluatorFixture, RotateThenMulAccumulate) {
  // The inner pattern of the VECTOR-IR gemv lowering (paper Listing 2):
  // sum of rotate-multiply terms.
  auto X = randomReals(Ctx.slots(), 25);
  auto W0 = randomReals(Ctx.slots(), 26);
  auto W1 = randomReals(Ctx.slots(), 27);
  Ciphertext CX = encrypt(X);

  Ciphertext R0 = Eval->mulPlain(CX, Eval->encodeForMul(CX, W0));
  Ciphertext CX1 = Eval->rotate(CX, 1);
  Ciphertext R1 = Eval->mulPlain(CX1, Eval->encodeForMul(CX1, W1));
  Eval->addInPlace(R0, R1);
  Eval->rescaleInPlace(R0);

  auto Out = decryptReal(R0);
  size_t S = Ctx.slots();
  for (size_t I = 0; I < S; ++I)
    EXPECT_NEAR(Out[I], X[I] * W0[I] + X[(I + 1) % S] * W1[I], 1e-4);
}

TEST_F(EvaluatorFixture, CountersTrackOperations) {
  Eval->counters().clear();
  auto X = randomReals(Ctx.slots(), 28);
  Ciphertext CX = encrypt(X);
  Ciphertext P = Eval->mul(CX, CX);
  Eval->rescaleInPlace(P);
  Eval->rotate(P, 1);
  const OpCounters &C = Eval->counters();
  EXPECT_EQ(C.MulCipher, 1u);
  EXPECT_EQ(C.Relinearize, 1u);
  EXPECT_EQ(C.Rescale, 1u);
  EXPECT_EQ(C.Rotate, 1u);
  EXPECT_EQ(C.KeySwitch, 2u); // one relin, one rotation
}

} // namespace
