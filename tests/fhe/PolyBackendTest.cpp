//===----------------------------------------------------------------------===//
// The poly-ops backend differential contract (docs/kernels.md): the
// vectorized backend must reproduce the scalar reference bit-for-bit on
// every op, at every modulus width the runtime generates, for every
// degree including the sub-lane-width NTT stages - and the equivalence
// must survive the thread pool partitioning above the backend (1 and 4
// threads) and a full encrypt -> evaluate -> decrypt round trip. Plus
// the knob: a malformed selection must fail as a clean InvalidArgument,
// never crash, and never disturb the active backend.
//===----------------------------------------------------------------------===//

#include "fhe/PolyBackend.h"

#include "fhe/Bootstrapper.h"
#include "fhe/CApi.h"
#include "fhe/Encryptor.h"
#include "fhe/ModArith.h"
#include "fhe/Ntt.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace ace;
using namespace ace::fhe;

namespace {

// Modulus widths spanning everything Context generates: rescale primes
// (~LogScale, 30-45 bits), first moduli (~50-55), and special primes
// (59-60, the worst case for lane-arithmetic headroom).
const int kPrimeBits[] = {30, 40, 50, 55, 59, 60};

uint64_t testPrime(int Bits, size_t Degree) {
  return generateNttPrimes(Bits, 2 * Degree, 1, {})[0];
}

std::vector<uint64_t> randomResidues(Rng &R, uint64_t P, size_t N) {
  std::vector<uint64_t> V(N);
  R.uniformVector(P, N, V);
  return V;
}

/// Runs one op under both backends from identical inputs and expects
/// bitwise-equal outputs. Op signature: (backend, data) -> void.
template <typename OpFn>
void expectBitIdentical(const std::vector<uint64_t> &Input, OpFn Op,
                        const char *What, int Bits, size_t N) {
  ASSERT_TRUE(simdPolyBackendSupported());
  std::vector<uint64_t> Scalar = Input, Simd = Input;
  Op(scalarPolyBackend(), Scalar.data());
  Op(*simdPolyBackend(), Simd.data());
  EXPECT_EQ(0, std::memcmp(Scalar.data(), Simd.data(),
                           Scalar.size() * sizeof(uint64_t)))
      << What << " diverges at " << Bits << "-bit prime, N=" << N;
}

class PolyBackendDifferentialTest
    : public ::testing::TestWithParam<size_t> {
protected:
  void SetUp() override {
    if (!simdPolyBackendSupported())
      GTEST_SKIP() << "no vectorized backend on this host/build";
  }
};

TEST_P(PolyBackendDifferentialTest, AllOpsAllWidths) {
  size_t N = GetParam();
  Rng R(0xace0 + static_cast<uint64_t>(N));
  for (int Bits : kPrimeBits) {
    uint64_t P = testPrime(Bits, N);
    NttTable Table(N, P);
    auto A = randomResidues(R, P, N);
    auto B = randomResidues(R, P, N);
    uint64_t S = R.uniform(P);
    uint64_t SShoup = shoupPrecompute(S, P);

    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.forwardNtt(Table, D);
    }, "forwardNtt", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.inverseNtt(Table, D);
    }, "inverseNtt", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.mul(D, B.data(), N, P);
    }, "mul", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.add(D, B.data(), N, P);
    }, "add", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.sub(D, B.data(), N, P);
    }, "sub", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.negate(D, N, P);
    }, "negate", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.scalarMul(D, S, SShoup, N, P);
    }, "scalarMul", Bits, N);
    expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
      BK.mulAcc(D, B.data(), B.data(), N, P);
    }, "mulAcc", Bits, N);
  }
}

TEST_P(PolyBackendDifferentialTest, EdgeResidues) {
  // Boundary inputs the random sweep is unlikely to hit: zeros
  // (negMod's special case, the Montgomery REDC zero-carry path) and
  // P-1 everywhere (maximal intermediates in every lane op).
  size_t N = GetParam();
  for (int Bits : kPrimeBits) {
    uint64_t P = testPrime(Bits, N);
    for (uint64_t V : {uint64_t(0), P - 1}) {
      std::vector<uint64_t> A(N, V), B(N, P - 1);
      expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
        BK.mul(D, B.data(), N, P);
      }, "mul(edge)", Bits, N);
      expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
        BK.negate(D, N, P);
      }, "negate(edge)", Bits, N);
      expectBitIdentical(A, [&](const PolyBackend &BK, uint64_t *D) {
        BK.mulAcc(D, B.data(), B.data(), N, P);
      }, "mulAcc(edge)", Bits, N);
    }
  }
}

// N=8 exercises the scalar butterfly tails (stages narrower than one
// vector); 1024 matches the runtime's default test ring.
INSTANTIATE_TEST_SUITE_P(Degrees, PolyBackendDifferentialTest,
                         ::testing::Values(8, 64, 256, 1024));

//===----------------------------------------------------------------------===//
// Whole-pipeline differential: same keys, same input ciphertext, the
// full evaluator surface under each backend x thread count must agree
// bit-for-bit (the PR 5 hoisted-vs-sequential method, now applied to
// the kernel seam).
//===----------------------------------------------------------------------===//

CkksParams pipelineParams() {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 128;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = 6;
  P.LogSpecialModulus = 59;
  P.Seed = 77;
  return P;
}

::testing::AssertionResult samePolys(const Ciphertext &A,
                                     const Ciphertext &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "polynomial count " << A.size() << " vs " << B.size();
  if (A.Scale != B.Scale)
    return ::testing::AssertionFailure()
           << "scale " << A.Scale << " vs " << B.Scale;
  for (size_t P = 0; P < A.size(); ++P) {
    const RnsPoly &PA = A.Polys[P], &PB = B.Polys[P];
    if (PA.numComponents() != PB.numComponents())
      return ::testing::AssertionFailure() << "component count differs";
    size_t N = PA.context().degree();
    for (size_t C = 0; C < PA.numComponents(); ++C)
      if (std::memcmp(PA.component(C), PB.component(C),
                      N * sizeof(uint64_t)) != 0)
        return ::testing::AssertionFailure()
               << "poly " << P << " component " << C << " differs";
  }
  return ::testing::AssertionSuccess();
}

class PolyBackendPipelineTest : public ::testing::Test {
protected:
  PolyBackendPipelineTest()
      : Ctx(pipelineParams()), Enc(Ctx), Gen(Ctx),
        Pub(Gen.makePublicKey()) {
    Gen.fillEvalKeys(Keys, {1, 3}, /*NeedRelin=*/true,
                     /*NeedConjugate=*/true);
    Eval = std::make_unique<Evaluator>(Ctx, Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(Ctx, Pub);
  }
  void TearDown() override {
    ThreadPool::instance().setNumThreads(0);
    ASSERT_TRUE(selectPolyBackend("auto").ok());
  }

  Context Ctx;
  Encoder Enc;
  KeyGenerator Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
};

TEST_F(PolyBackendPipelineTest, EncryptInferDecryptBitIdentical) {
  if (!simdPolyBackendSupported())
    GTEST_SKIP() << "no vectorized backend on this host/build";

  // Encrypt ONCE (encryption draws randomness), then replay a small
  // encrypted-inference pipeline - rotations + diagonal mulPlains +
  // adds (the gemv pattern), a ct-ct mul with relin, rescales - under
  // every backend x thread count combination.
  Rng R(5);
  std::vector<double> X(Ctx.slots()), W(Ctx.slots());
  for (auto &V : X)
    V = R.uniformReal(-1.0, 1.0);
  for (auto &V : W)
    V = R.uniformReal(-1.0, 1.0);
  Ciphertext In = Encrypt->encryptValues(Enc, X, Ctx.chainLength());

  auto Pipeline = [&](const char *Backend, size_t Threads) {
    EXPECT_TRUE(selectPolyBackend(Backend).ok());
    ThreadPool::instance().setNumThreads(Threads);
    Ciphertext Ct = Eval->mul(In, In);
    Eval->rescaleInPlace(Ct);
    Ct = Eval->rotate(Ct, 3);
    Plaintext P = Eval->encodeForMul(Ct, W);
    Ciphertext Acc = Eval->mulPlain(Ct, P);
    // Fused accumulate path (the bootstrapper's matvec kernel).
    Eval->mulPlainAddInPlace(Acc, Ct, P);
    Eval->rescaleInPlace(Acc);
    Eval->addInPlace(Acc, Eval->rotate(Acc, 1));
    Ct = Eval->conjugate(Acc);
    return Ct;
  };

  Ciphertext Reference = Pipeline("scalar", 1);
  Decryptor Dec(Ctx, Gen.secretKey());
  std::vector<double> RefValues = Dec.decryptRealValues(Enc, Reference);

  for (const char *Backend : {"scalar", "simd"}) {
    for (size_t Threads : {size_t(1), size_t(4)}) {
      Ciphertext Out = Pipeline(Backend, Threads);
      EXPECT_TRUE(samePolys(Out, Reference))
          << Backend << " at " << Threads << " threads";
      // Decryption (and decode) runs through the same kernels; the
      // round trip must agree to the last bit, not just the polys.
      std::vector<double> Values = Dec.decryptRealValues(Enc, Out);
      ASSERT_EQ(Values.size(), RefValues.size());
      EXPECT_EQ(0, std::memcmp(Values.data(), RefValues.data(),
                               Values.size() * sizeof(double)))
          << Backend << " at " << Threads << " threads";
    }
  }
}

//===----------------------------------------------------------------------===//
// Knob behavior
//===----------------------------------------------------------------------===//

TEST(PolyBackendKnobTest, MalformedSpecIsCleanInvalidArgument) {
  std::string Before = activePolyBackendName();
  Status S = selectPolyBackend("bogus");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);
  // The failed selection must not disturb the active backend.
  EXPECT_EQ(Before, activePolyBackendName());

  // Same contract through the C API error channel.
  EXPECT_EQ(ACE_ERR_INVALID_ARGUMENT, ace_set_poly_backend("bogus"));
  EXPECT_EQ(ACE_ERR_INVALID_ARGUMENT, ace_set_poly_backend(nullptr));
  EXPECT_EQ(Before, std::string(ace_poly_backend()));
}

TEST(PolyBackendKnobTest, ExplicitSelectionRoundTrips) {
  EXPECT_TRUE(selectPolyBackend("scalar").ok());
  EXPECT_STREQ("scalar", activePolyBackendName());
  if (simdPolyBackendSupported()) {
    EXPECT_EQ(ACE_OK, ace_set_poly_backend("simd"));
    EXPECT_STREQ("simd", ace_poly_backend());
  } else {
    Status S = selectPolyBackend("simd");
    ASSERT_FALSE(S.ok());
    EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);
    EXPECT_STREQ("scalar", activePolyBackendName());
  }
  EXPECT_TRUE(selectPolyBackend("auto").ok());
}

} // namespace
