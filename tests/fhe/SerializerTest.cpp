//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Round-trip and strictness tests for the hardened wire format
// (docs/serialization.md): every object type must round-trip
// bit-identically through both the buffer and stream paths, every
// malformed-input class must fail with the documented error code, and a
// loaded object must be indistinguishable from the original in actual
// FHE use (decrypting to the same values).
//
//===----------------------------------------------------------------------===//

#include "fhe/Encoder.h"
#include "fhe/Encryptor.h"
#include "fhe/Evaluator.h"
#include "fhe/Serializer.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ace;
using namespace ace::fhe;

namespace {

class SerializerTest : public ::testing::Test {
protected:
  SerializerTest() {
    CkksParams P;
    P.RingDegree = 64;
    P.Slots = 16;
    P.LogScale = 30;
    P.LogFirstModulus = 40;
    P.NumRescaleModuli = 2;
    P.LogSpecialModulus = 45;
    P.Seed = 11;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
  }

  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  std::unique_ptr<Encryptor> Encrypt;
};

/// Round-trips \p Obj through a buffer and asserts the reloaded object
/// re-serializes to the identical bytes (the strongest equality the wire
/// format itself can express).
template <typename T, typename LoadFn>
void expectBitIdenticalRoundTrip(const T &Obj, LoadFn Load) {
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Obj, Bytes).ok());
  auto Reloaded = Load(Bytes.data(), Bytes.size());
  ASSERT_TRUE(Reloaded.ok()) << Reloaded.status().message();
  std::vector<uint8_t> Again;
  ASSERT_TRUE(wire::save(*Reloaded, Again).ok());
  EXPECT_EQ(Bytes, Again);
}

TEST_F(SerializerTest, ParamsRoundTrip) {
  expectBitIdenticalRoundTrip(Ctx->params(),
                              [](const uint8_t *D, size_t N) {
                                return wire::loadParams(D, N);
                              });
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Ctx->params(), Bytes).ok());
  auto P = wire::loadParams(Bytes.data(), Bytes.size());
  ASSERT_TRUE(P.ok());
  EXPECT_EQ(P->RingDegree, Ctx->params().RingDegree);
  EXPECT_EQ(P->Slots, Ctx->params().Slots);
  EXPECT_EQ(P->LogScale, Ctx->params().LogScale);
  EXPECT_EQ(P->NumRescaleModuli, Ctx->params().NumRescaleModuli);
  EXPECT_EQ(P->Seed, Ctx->params().Seed);
}

TEST_F(SerializerTest, PlaintextRoundTrip) {
  Plaintext Pt = Enc->encodeReal({1.5, -2.25, 0.125}, Ctx->scale(), 2);
  expectBitIdenticalRoundTrip(Pt, [&](const uint8_t *D, size_t N) {
    return wire::loadPlaintext(*Ctx, D, N);
  });
}

TEST_F(SerializerTest, CiphertextRoundTripDecryptsIdentically) {
  std::vector<double> Values = {0.5, -1.0, 2.5, 0.0625};
  Ciphertext Ct =
      Encrypt->encryptValues(*Enc, Values, Ctx->chainLength());
  expectBitIdenticalRoundTrip(Ct, [&](const uint8_t *D, size_t N) {
    return wire::loadCiphertext(*Ctx, D, N);
  });

  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Ct, Bytes).ok());
  auto Reloaded = wire::loadCiphertext(*Ctx, Bytes.data(), Bytes.size());
  ASSERT_TRUE(Reloaded.ok());
  Decryptor Dec(*Ctx, Gen->secretKey());
  auto Direct = Dec.decryptRealValues(*Enc, Ct);
  auto ViaWire = Dec.decryptRealValues(*Enc, *Reloaded);
  ASSERT_EQ(Direct.size(), ViaWire.size());
  for (size_t I = 0; I < Direct.size(); ++I)
    EXPECT_DOUBLE_EQ(Direct[I], ViaWire[I]);
}

TEST_F(SerializerTest, KeyRoundTrips) {
  expectBitIdenticalRoundTrip(Pub, [&](const uint8_t *D, size_t N) {
    return wire::loadPublicKey(*Ctx, D, N);
  });
  expectBitIdenticalRoundTrip(Gen->secretKey(),
                              [&](const uint8_t *D, size_t N) {
                                return wire::loadSecretKey(*Ctx, D, N);
                              });
  SwitchKey Relin = Gen->makeRelinKey();
  expectBitIdenticalRoundTrip(Relin, [&](const uint8_t *D, size_t N) {
    return wire::loadSwitchKey(*Ctx, D, N);
  });
}

TEST_F(SerializerTest, EvalKeysRoundTrip) {
  EvalKeys Keys;
  Gen->fillEvalKeys(Keys, {1, 2, -1}, /*NeedRelin=*/true,
                    /*NeedConjugate=*/true);
  expectBitIdenticalRoundTrip(Keys, [&](const uint8_t *D, size_t N) {
    return wire::loadEvalKeys(*Ctx, D, N);
  });

  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Keys, Bytes).ok());
  auto Reloaded = wire::loadEvalKeys(*Ctx, Bytes.data(), Bytes.size());
  ASSERT_TRUE(Reloaded.ok());
  EXPECT_EQ(Reloaded->HasRelin, Keys.HasRelin);
  EXPECT_EQ(Reloaded->HasConjugate, Keys.HasConjugate);
  EXPECT_EQ(Reloaded->Rotations.size(), Keys.Rotations.size());
}

TEST_F(SerializerTest, EmptyEvalKeysRoundTrip) {
  EvalKeys Empty;
  expectBitIdenticalRoundTrip(Empty, [&](const uint8_t *D, size_t N) {
    return wire::loadEvalKeys(*Ctx, D, N);
  });
}

TEST_F(SerializerTest, ReloadedKeysEvaluate) {
  // The real acceptance bar: keys that crossed the wire must drive actual
  // homomorphic evaluation to the same result as the originals.
  EvalKeys Keys;
  Gen->fillEvalKeys(Keys, {1}, /*NeedRelin=*/true, /*NeedConjugate=*/false);
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Keys, Bytes).ok());
  auto Reloaded = wire::loadEvalKeys(*Ctx, Bytes.data(), Bytes.size());
  ASSERT_TRUE(Reloaded.ok());

  Ciphertext Ct = Encrypt->encryptValues(*Enc, {1.0, 2.0, 3.0, 4.0},
                                         Ctx->chainLength());
  Evaluator EvalOrig(*Ctx, *Enc, Keys);
  Evaluator EvalWire(*Ctx, *Enc, *Reloaded);
  auto A = EvalOrig.checkedRotate(Ct, 1);
  auto B = EvalWire.checkedRotate(Ct, 1);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  Decryptor Dec(*Ctx, Gen->secretKey());
  auto Va = Dec.decryptRealValues(*Enc, *A);
  auto Vb = Dec.decryptRealValues(*Enc, *B);
  for (size_t I = 0; I < Va.size(); ++I)
    EXPECT_DOUBLE_EQ(Va[I], Vb[I]);
}

TEST_F(SerializerTest, StreamRoundTripAndConcatenation) {
  Ciphertext Ct =
      Encrypt->encryptValues(*Enc, {0.25, 0.5}, Ctx->chainLength());
  std::stringstream SS;
  ASSERT_TRUE(wire::save(Ctx->params(), SS).ok());
  ASSERT_TRUE(wire::save(Ct, SS).ok());
  ASSERT_TRUE(wire::save(Pub, SS).ok());
  // Stream loads consume exactly one object each, in order.
  auto P = wire::loadParams(SS);
  ASSERT_TRUE(P.ok()) << P.status().message();
  auto C = wire::loadCiphertext(*Ctx, SS);
  ASSERT_TRUE(C.ok()) << C.status().message();
  auto K = wire::loadPublicKey(*Ctx, SS);
  ASSERT_TRUE(K.ok()) << K.status().message();
  EXPECT_EQ(P->RingDegree, Ctx->params().RingDegree);
}

TEST_F(SerializerTest, BufferLoadRejectsTrailingBytes) {
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Ctx->params(), Bytes).ok());
  Bytes.push_back(0);
  auto P = wire::loadParams(Bytes.data(), Bytes.size());
  ASSERT_FALSE(P.ok());
  EXPECT_EQ(P.status().code(), ErrorCode::DataCorrupt);
  EXPECT_NE(P.status().message().find("trailing"), std::string::npos);
}

TEST_F(SerializerTest, EveryTruncationFailsCleanly) {
  // Exhaustive prefix scan: every possible truncation of a valid object
  // must produce a clean DataCorrupt/ResourceExhausted error.
  Ciphertext Ct =
      Encrypt->encryptValues(*Enc, {1.0}, Ctx->chainLength());
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Ct, Bytes).ok());
  for (size_t N = 0; N < Bytes.size(); ++N) {
    auto R = wire::loadCiphertext(*Ctx, Bytes.data(), N);
    ASSERT_FALSE(R.ok()) << "prefix length " << N;
    ASSERT_TRUE(R.status().code() == ErrorCode::DataCorrupt ||
                R.status().code() == ErrorCode::ResourceExhausted)
        << "prefix length " << N << ": " << R.status().message();
  }
}

TEST_F(SerializerTest, WrongContextRejected) {
  // Bytes written under one parameter set must not validate under
  // another: the residues exceed the smaller context's moduli or the
  // shape checks fire.
  Ciphertext Ct =
      Encrypt->encryptValues(*Enc, {1.0}, Ctx->chainLength());
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Ct, Bytes).ok());
  CkksParams Other = Ctx->params();
  Other.RingDegree = 32;
  Other.Slots = 8;
  Context OtherCtx(Other);
  auto R = wire::loadCiphertext(OtherCtx, Bytes.data(), Bytes.size());
  EXPECT_FALSE(R.ok());
}

TEST_F(SerializerTest, SaveRejectsInvalidObjects) {
  std::vector<uint8_t> Bytes;
  Ciphertext Malformed; // zero polynomials
  auto S = wire::save(Malformed, Bytes);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);

  Plaintext Unbound; // default-constructed poly
  S = wire::save(Unbound, Bytes);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);

  CkksParams Bad;
  Bad.RingDegree = 33;
  S = wire::save(Bad, Bytes);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);
}

TEST_F(SerializerTest, TelemetryCountsBytes) {
  telemetry::Telemetry::instance().clear();
  telemetry::Telemetry::instance().setEnabled(true);
  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(wire::save(Ctx->params(), Bytes).ok());
  auto P = wire::loadParams(Bytes.data(), Bytes.size());
  ASSERT_TRUE(P.ok());
  uint64_t Ser = telemetry::Telemetry::instance().counterValue(
      telemetry::Counter::BytesSerialized);
  uint64_t De = telemetry::Telemetry::instance().counterValue(
      telemetry::Counter::BytesDeserialized);
  telemetry::Telemetry::instance().setEnabled(false);
  telemetry::Telemetry::instance().clear();
  EXPECT_EQ(Ser, Bytes.size());
  EXPECT_EQ(De, Bytes.size());
}

} // namespace
