//===----------------------------------------------------------------------===//
// Noise-budget exhaustion tests: drive a ciphertext's budget
// (Evaluator::noiseBudgetBits - log2 of the active modulus product minus
// log2 of the scale) toward zero through repeated checked-tier multiplies
// WITHOUT rescaling, and pin that the checked evaluator reports a clean
// Status(DepthExhausted) at the brink instead of letting the plaintext
// wrap around the modulus and decrypt to unrelated garbage.
//===----------------------------------------------------------------------===//

#include "fhe/Evaluator.h"

#include "fhe/Encryptor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ace;
using namespace ace::fhe;

namespace {

CkksParams testParams() {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 128;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = 6;
  P.LogSpecialModulus = 59;
  P.Seed = 77;
  return P;
}

std::vector<double> randomReals(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> V(N);
  for (auto &X : V)
    X = R.uniformReal(-0.5, 0.5);
  return V;
}

class NoiseBudgetFixture : public ::testing::Test {
protected:
  NoiseBudgetFixture()
      : Ctx(testParams()), Enc(Ctx), Gen(Ctx), Pub(Gen.makePublicKey()) {
    Gen.fillEvalKeys(Keys, {}, /*NeedRelin=*/true, /*NeedConjugate=*/false);
    Eval = std::make_unique<Evaluator>(Ctx, Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(Ctx, Pub);
    Decrypt = std::make_unique<Decryptor>(Ctx, Gen.secretKey());
  }

  Context Ctx;
  Encoder Enc;
  KeyGenerator Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

/// Repeated ct-ct multiplies without rescale square the scale each round;
/// the checked tier must stop the chain with DepthExhausted before the
/// scale overruns the active modulus, and the last ACCEPTED result must
/// still decrypt to the true product (the guard fires before garbage, not
/// after).
TEST_F(NoiseBudgetFixture, RepeatedMulWithoutRescaleHitsBudgetWall) {
  auto X = randomReals(Ctx.slots(), 1);
  Ciphertext Ct = Encrypt->encryptValues(Enc, X, Ctx.chainLength());
  std::vector<double> Expect = X;

  bool HitWall = false;
  for (int Round = 0; Round < 32 && !HitWall; ++Round) {
    double BudgetBefore = Eval->noiseBudgetBits(Ct);
    auto Next = Eval->checkedMul(Ct, Ct);
    if (Next.ok()) {
      // The guard promised headroom: the product's budget must be
      // positive and the values still meaningful.
      Ct = Next.take();
      for (auto &E : Expect)
        E *= E;
      EXPECT_GT(Eval->noiseBudgetBits(Ct), 0.0)
          << "accepted a mul that left no budget (round " << Round << ")";
    } else {
      HitWall = true;
      EXPECT_EQ(Next.status().code(), ErrorCode::DepthExhausted)
          << Next.status().message();
      // The diagnostic names the failure class.
      EXPECT_NE(Next.status().message().find("noise budget"),
                std::string::npos)
          << Next.status().message();
      // At the wall the remaining budget really was too thin for another
      // squaring.
      EXPECT_LT(BudgetBefore - std::log2(Ct.Scale), 1.0);
    }
  }
  ASSERT_TRUE(HitWall) << "budget never exhausted after 32 squarings";

  // The last accepted ciphertext decrypts to the true running product -
  // nothing silently wrapped before the guard fired.
  auto Got = Decrypt->decryptRealValues(Enc, Ct);
  for (size_t I = 0; I < 8; ++I)
    EXPECT_NEAR(Got[I], Expect[I], 1e-2) << "slot " << I;
}

/// The same wall exists for plaintext multiplies: once the scale climbs
/// high enough that one more mulPlain would overrun the modulus, the
/// checked tier refuses.
TEST_F(NoiseBudgetFixture, MulPlainRefusesWhenBudgetExhausted) {
  auto X = randomReals(Ctx.slots(), 2);
  Ciphertext Ct = Encrypt->encryptValues(Enc, X, Ctx.chainLength());
  std::vector<double> Ones(Ctx.slots(), 1.0);

  bool HitWall = false;
  for (int Round = 0; Round < 64 && !HitWall; ++Round) {
    auto Next = Eval->checkedMulPlain(Ct, Ones);
    if (Next.ok()) {
      Ct = Next.take();
      continue;
    }
    HitWall = true;
    EXPECT_EQ(Next.status().code(), ErrorCode::DepthExhausted)
        << Next.status().message();
  }
  ASSERT_TRUE(HitWall) << "mulPlain chain never exhausted the budget";

  // The last accepted ciphertext still holds the (unchanged) values.
  auto Got = Decrypt->decryptRealValues(Enc, Ct);
  for (size_t I = 0; I < 8; ++I)
    EXPECT_NEAR(Got[I], X[I], 1e-2) << "slot " << I;
}

/// Rescaling restores the invariant: a chain that rescales after every
/// multiply runs to the bottom of the modulus chain and fails only with
/// the existing "1 active prime" depth diagnostic, never the budget one.
TEST_F(NoiseBudgetFixture, RescaledChainNeverTripsTheBudgetGuard) {
  auto X = randomReals(Ctx.slots(), 3);
  Ciphertext Ct = Encrypt->encryptValues(Enc, X, Ctx.chainLength());
  while (Ct.numQ() >= 2) {
    auto Prod = Eval->checkedMul(Ct, Ct);
    ASSERT_TRUE(Prod.ok()) << "budget guard fired on a well-managed chain "
                              "at numQ="
                           << Ct.numQ() << ": " << Prod.status().message();
    auto Scaled = Eval->checkedRescale(*Prod);
    ASSERT_TRUE(Scaled.ok()) << Scaled.status().message();
    Ct = Scaled.take();
  }
  // At the base modulus the next multiply fails for depth, with the
  // pre-existing diagnostic.
  auto Bottom = Eval->checkedMul(Ct, Ct);
  ASSERT_FALSE(Bottom.ok());
  EXPECT_EQ(Bottom.status().code(), ErrorCode::DepthExhausted);
}

} // namespace
