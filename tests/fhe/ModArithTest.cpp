//===----------------------------------------------------------------------===//
// Unit and property tests for prime-field arithmetic.
//===----------------------------------------------------------------------===//

#include "fhe/ModArith.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

TEST(ModArithTest, AddSubRoundTrip) {
  const uint64_t P = 1000000007ULL;
  Rng R(1);
  for (int I = 0; I < 1000; ++I) {
    uint64_t A = R.uniform(P), B = R.uniform(P);
    EXPECT_EQ(subMod(addMod(A, B, P), B, P), A);
    EXPECT_EQ(addMod(subMod(A, B, P), B, P), A);
  }
}

TEST(ModArithTest, NegMod) {
  const uint64_t P = 97;
  EXPECT_EQ(negMod(0, P), 0u);
  for (uint64_t A = 1; A < P; ++A)
    EXPECT_EQ(addMod(A, negMod(A, P), P), 0u);
}

TEST(ModArithTest, MulModMatchesSmallCases) {
  EXPECT_EQ(mulMod(7, 8, 13), 56 % 13);
  EXPECT_EQ(mulMod(0, 12345, 13), 0u);
  // Near-overflow operands exercise the 128-bit path.
  const uint64_t P = (1ULL << 59) + 21 * (1ULL << 13) + 1;
  uint64_t A = P - 2, B = P - 3;
  // (P-2)(P-3) = P^2 - 5P + 6 = 6 (mod P).
  EXPECT_EQ(mulMod(A, B, P), 6u);
}

TEST(ModArithTest, ShoupMatchesPlain) {
  Rng R(2);
  const uint64_t P = (1ULL << 50) + (1ULL << 14) + 1; // any odd modulus
  for (int I = 0; I < 2000; ++I) {
    uint64_t A = R.uniform(P), B = R.uniform(P);
    uint64_t BS = shoupPrecompute(B, P);
    EXPECT_EQ(mulModShoup(A, B, BS, P), mulMod(A, B, P));
  }
}

TEST(ModArithTest, PowMod) {
  EXPECT_EQ(powMod(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(powMod(5, 0, 97), 1u);
  // Fermat: a^(p-1) = 1.
  const uint64_t P = 1000003;
  Rng R(3);
  for (int I = 0; I < 50; ++I) {
    uint64_t A = 1 + R.uniform(P - 1);
    EXPECT_EQ(powMod(A, P - 1, P), 1u);
  }
}

TEST(ModArithTest, InvMod) {
  const uint64_t P = 1000000007ULL;
  Rng R(4);
  for (int I = 0; I < 200; ++I) {
    uint64_t A = 1 + R.uniform(P - 1);
    EXPECT_EQ(mulMod(A, invMod(A, P), P), 1u);
  }
}

TEST(ModArithTest, IsPrimeKnownValues) {
  EXPECT_FALSE(isPrime(0));
  EXPECT_FALSE(isPrime(1));
  EXPECT_TRUE(isPrime(2));
  EXPECT_TRUE(isPrime(3));
  EXPECT_FALSE(isPrime(4));
  EXPECT_TRUE(isPrime(1000000007ULL));
  EXPECT_FALSE(isPrime(1000000007ULL * 3));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(isPrime(561));
  // Large Mersenne prime 2^61 - 1.
  EXPECT_TRUE(isPrime((1ULL << 61) - 1));
}

TEST(ModArithTest, PrimitiveRootOrder) {
  const uint64_t Order = 1 << 12;
  auto Primes = generateNttPrimes(40, Order, 3, {});
  for (uint64_t P : Primes) {
    uint64_t Root = findPrimitiveRoot(Order, P);
    EXPECT_EQ(powMod(Root, Order, P), 1u);
    EXPECT_NE(powMod(Root, Order / 2, P), 1u);
  }
}

TEST(ModArithTest, GeneratedPrimesAreNttFriendly) {
  const uint64_t Factor = 1 << 13;
  auto Primes = generateNttPrimes(45, Factor, 5, {});
  ASSERT_EQ(Primes.size(), 5u);
  for (uint64_t P : Primes) {
    EXPECT_TRUE(isPrime(P));
    EXPECT_EQ((P - 1) % Factor, 0u);
    EXPECT_GE(P, 1ULL << 44);
    EXPECT_LT(P, 1ULL << 45);
  }
  // Distinct and descending.
  for (size_t I = 1; I < Primes.size(); ++I)
    EXPECT_LT(Primes[I], Primes[I - 1]);
}

TEST(ModArithTest, GeneratedPrimesRespectExclusion) {
  const uint64_t Factor = 1 << 13;
  auto First = generateNttPrimes(45, Factor, 2, {});
  auto Second = generateNttPrimes(45, Factor, 2, First);
  for (uint64_t P : Second)
    for (uint64_t Q : First)
      EXPECT_NE(P, Q);
}

} // namespace
