//===----------------------------------------------------------------------===//
// Property tests for the negacyclic NTT: inverse round trip and agreement
// of NTT-based multiplication with schoolbook negacyclic convolution.
//===----------------------------------------------------------------------===//

#include "fhe/Ntt.h"

#include "fhe/ModArith.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

/// Schoolbook multiplication in Z_p[X]/(X^N + 1).
std::vector<uint64_t> negacyclicMul(const std::vector<uint64_t> &A,
                                    const std::vector<uint64_t> &B,
                                    uint64_t P) {
  size_t N = A.size();
  std::vector<uint64_t> C(N, 0);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J) {
      uint64_t Prod = mulMod(A[I], B[J], P);
      size_t K = I + J;
      if (K < N)
        C[K] = addMod(C[K], Prod, P);
      else
        C[K - N] = subMod(C[K - N], Prod, P);
    }
  }
  return C;
}

class NttRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NttRoundTripTest, InverseOfForwardIsIdentity) {
  size_t N = GetParam();
  uint64_t P = generateNttPrimes(45, 2 * N, 1, {})[0];
  NttTable Table(N, P);
  Rng R(42);
  std::vector<uint64_t> Data(N), Orig;
  for (auto &V : Data)
    V = R.uniform(P);
  Orig = Data;
  Table.forward(Data.data());
  EXPECT_NE(Data, Orig); // The transform must actually do something.
  Table.inverse(Data.data());
  EXPECT_EQ(Data, Orig);
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttRoundTripTest,
                         ::testing::Values(8, 16, 64, 256, 1024, 4096));

class NttMulTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NttMulTest, PointwiseMatchesSchoolbook) {
  size_t N = GetParam();
  uint64_t P = generateNttPrimes(40, 2 * N, 1, {})[0];
  NttTable Table(N, P);
  Rng R(7);
  std::vector<uint64_t> A(N), B(N);
  for (auto &V : A)
    V = R.uniform(P);
  for (auto &V : B)
    V = R.uniform(P);
  std::vector<uint64_t> Expected = negacyclicMul(A, B, P);

  std::vector<uint64_t> FA = A, FB = B;
  Table.forward(FA.data());
  Table.forward(FB.data());
  for (size_t I = 0; I < N; ++I)
    FA[I] = mulMod(FA[I], FB[I], P);
  Table.inverse(FA.data());
  EXPECT_EQ(FA, Expected);
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttMulTest,
                         ::testing::Values(8, 16, 32, 64, 128));

TEST(NttTest, LinearityOfForward) {
  size_t N = 256;
  uint64_t P = generateNttPrimes(40, 2 * N, 1, {})[0];
  NttTable Table(N, P);
  Rng R(9);
  std::vector<uint64_t> A(N), B(N), Sum(N);
  for (size_t I = 0; I < N; ++I) {
    A[I] = R.uniform(P);
    B[I] = R.uniform(P);
    Sum[I] = addMod(A[I], B[I], P);
  }
  Table.forward(A.data());
  Table.forward(B.data());
  Table.forward(Sum.data());
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Sum[I], addMod(A[I], B[I], P));
}

TEST(NttTest, ConstantPolynomialIsConstantSpectrum) {
  // A degree-0 polynomial evaluates to its constant at every root, which
  // the Evaluator's addConst fast path relies on.
  size_t N = 128;
  uint64_t P = generateNttPrimes(40, 2 * N, 1, {})[0];
  NttTable Table(N, P);
  std::vector<uint64_t> Data(N, 0);
  Data[0] = 12345;
  Table.forward(Data.data());
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Data[I], 12345u);
}

TEST(NttTest, DistinctPrimesIndependentTables) {
  size_t N = 64;
  auto Primes = generateNttPrimes(40, 2 * N, 2, {});
  NttTable T0(N, Primes[0]), T1(N, Primes[1]);
  Rng R(11);
  std::vector<uint64_t> A(N);
  for (auto &V : A)
    V = R.uniform(Primes[1] < Primes[0] ? Primes[1] : Primes[0]);
  std::vector<uint64_t> B = A;
  T0.forward(A.data());
  T0.inverse(A.data());
  T1.forward(B.data());
  T1.inverse(B.data());
  EXPECT_EQ(A, B); // Both must round-trip to the same original values.
}

} // namespace
