//===----------------------------------------------------------------------===//
// Chebyshev interpolation and homomorphic series-evaluation tests.
//===----------------------------------------------------------------------===//

#include "fhe/Chebyshev.h"

#include "fhe/Encryptor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ace;
using namespace ace::fhe;

namespace {

TEST(ChebyshevInterpolateTest, ReproducesPolynomial) {
  // x^3 = (T_3 + 3 T_1) / 4.
  auto C = chebyshevInterpolate([](double X) { return X * X * X; }, 3);
  ASSERT_EQ(C.size(), 4u);
  EXPECT_NEAR(C[0], 0.0, 1e-12);
  EXPECT_NEAR(C[1], 0.75, 1e-12);
  EXPECT_NEAR(C[2], 0.0, 1e-12);
  EXPECT_NEAR(C[3], 0.25, 1e-12);
}

TEST(ChebyshevInterpolateTest, ApproximatesSmoothFunction) {
  auto F = [](double X) { return std::exp(X) * std::sin(3 * X); };
  auto C = chebyshevInterpolate(F, 25);
  for (double X = -1.0; X <= 1.0; X += 0.05)
    EXPECT_NEAR(chebyshevEvalPlain(C, X), F(X), 1e-8);
}

TEST(ChebyshevInterpolateTest, HighFrequencyCosine) {
  // The bootstrapper's workload: cos with ~20 rad of phase.
  auto F = [](double X) { return std::cos(20.4 * X - 0.4); };
  auto C = chebyshevInterpolate(F, 39);
  for (double X = -1.0; X <= 1.0; X += 0.01)
    EXPECT_NEAR(chebyshevEvalPlain(C, X), F(X), 1e-6);
}

TEST(ChebyshevEvalPlainTest, ClenshawMatchesDirect) {
  std::vector<double> C = {0.5, -1.0, 0.25, 0.125};
  for (double X = -1.0; X <= 1.0; X += 0.125) {
    double T0 = 1, T1 = X, Acc = C[0] + C[1] * X;
    for (size_t I = 2; I < C.size(); ++I) {
      double T2 = 2 * X * T1 - T0;
      Acc += C[I] * T2;
      T0 = T1;
      T1 = T2;
    }
    EXPECT_NEAR(chebyshevEvalPlain(C, X), Acc, 1e-12);
  }
}

TEST(ChebyshevDepthTest, BoundGrowsWithDegree) {
  EXPECT_GE(ChebyshevEvaluator::depthForDegree(3), 1);
  EXPECT_LE(ChebyshevEvaluator::depthForDegree(31), 8);
  EXPECT_LE(ChebyshevEvaluator::depthForDegree(63), 10);
  EXPECT_LE(ChebyshevEvaluator::depthForDegree(127), 12);
}

class HomomorphicChebyshevTest : public ::testing::Test {
protected:
  HomomorphicChebyshevTest() {
    CkksParams P;
    P.RingDegree = 1024;
    P.Slots = 64;
    P.LogScale = 40;
    P.LogFirstModulus = 50;
    P.NumRescaleModuli = 12;
    P.LogSpecialModulus = 59;
    P.Seed = 5;
    Ctx = std::make_unique<Context>(P);
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Gen->fillEvalKeys(Keys, {}, /*NeedRelin=*/true, /*NeedConjugate=*/false);
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
    Decrypt = std::make_unique<Decryptor>(*Ctx, Gen->secretKey());
  }

  void runCase(const std::function<double(double)> &F, int Degree,
               double Tolerance) {
    Rng R(71);
    std::vector<double> X(Ctx->slots());
    for (auto &V : X)
      V = R.uniformReal(-0.95, 0.95);
    Ciphertext Ct =
        Encrypt->encryptValues(*Enc, X, Ctx->chainLength());
    auto Coeffs = chebyshevInterpolate(F, Degree);
    ChebyshevEvaluator ChebEval(*Eval);
    size_t Before = Ct.numQ();
    Ciphertext Out = ChebEval.evaluate(Ct, Coeffs);
    // Depth bound must hold.
    EXPECT_LE(Before - Out.numQ(),
              static_cast<size_t>(ChebyshevEvaluator::depthForDegree(Degree)));
    auto Result = Decrypt->decryptRealValues(*Enc, Out);
    for (size_t I = 0; I < X.size(); ++I)
      EXPECT_NEAR(Result[I], chebyshevEvalPlain(Coeffs, X[I]), Tolerance)
          << "slot " << I;
  }

  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

TEST_F(HomomorphicChebyshevTest, LinearSeries) {
  runCase([](double X) { return 0.5 * X - 0.25; }, 1, 1e-4);
}

TEST_F(HomomorphicChebyshevTest, CubicSeries) {
  runCase([](double X) { return X * X * X; }, 3, 1e-4);
}

TEST_F(HomomorphicChebyshevTest, Degree15Smooth) {
  runCase([](double X) { return std::tanh(2 * X); }, 15, 1e-3);
}

TEST_F(HomomorphicChebyshevTest, Degree31Oscillatory) {
  runCase([](double X) { return std::cos(10 * X); }, 31, 1e-3);
}

TEST_F(HomomorphicChebyshevTest, Degree39BootstrapProfile) {
  runCase([](double X) { return std::cos(20.4 * X - M_PI / 8); }, 39, 5e-3);
}

} // namespace
