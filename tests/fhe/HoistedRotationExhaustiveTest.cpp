//===----------------------------------------------------------------------===//
// Exhaustive differential mode of the hoisted-rotation suite: sweeps
// every level of the chain, every keyed step (alone and in batches), and
// several thread counts, comparing rotateHoisted against sequential
// rotate bit for bit. Orders of magnitude more trials than the tier-1
// property test, so it runs only when ACE_EXHAUSTIVE is set (the CI
// nightly-style job; see README "Testing").
//===----------------------------------------------------------------------===//

#include "fhe/Encryptor.h"
#include "fhe/Evaluator.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>

using namespace ace;
using namespace ace::fhe;

namespace {

::testing::AssertionResult sameCiphertext(const Ciphertext &A,
                                          const Ciphertext &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure() << "polynomial count differs";
  if (A.Scale != B.Scale)
    return ::testing::AssertionFailure()
           << "scale " << A.Scale << " vs " << B.Scale;
  if (A.Slots != B.Slots)
    return ::testing::AssertionFailure() << "slot count differs";
  for (size_t P = 0; P < A.size(); ++P) {
    const RnsPoly &PA = A.Polys[P], &PB = B.Polys[P];
    if (PA.numComponents() != PB.numComponents())
      return ::testing::AssertionFailure() << "component count differs";
    size_t N = PA.context().degree();
    for (size_t C = 0; C < PA.numComponents(); ++C)
      if (std::memcmp(PA.component(C), PB.component(C),
                      N * sizeof(uint64_t)) != 0)
        return ::testing::AssertionFailure()
               << "poly " << P << " component " << C << " differs";
  }
  return ::testing::AssertionSuccess();
}

TEST(HoistedRotationExhaustive, AllLevelsStepsAndThreadCounts) {
  if (std::getenv("ACE_EXHAUSTIVE") == nullptr)
    GTEST_SKIP() << "set ACE_EXHAUSTIVE=1 to run the exhaustive sweep";

  for (uint64_t Seed : {101u, 202u}) {
    CkksParams P;
    P.RingDegree = 1024;
    P.Slots = 128;
    P.LogScale = 40;
    P.LogFirstModulus = 50;
    P.NumRescaleModuli = 6;
    P.LogSpecialModulus = 59;
    P.Seed = Seed;
    Context Ctx(P);
    Encoder Enc(Ctx);
    KeyGenerator Gen(Ctx);
    PublicKey Pub = Gen.makePublicKey();
    EvalKeys Keys;
    std::vector<int64_t> Steps;
    for (int64_t S = 1; S < static_cast<int64_t>(Ctx.slots()); S <<= 1)
      Steps.push_back(S);
    Steps.insert(Steps.end(), {3, 5, 7, 11, 127, -1, -5});
    Gen.fillEvalKeys(Keys, Steps, /*NeedRelin=*/false,
                     /*NeedConjugate=*/false);
    Evaluator Eval(Ctx, Enc, Keys);
    Encryptor Encrypt(Ctx, Pub);

    Rng R(Seed * 7 + 1);
    for (size_t NumQ = 2; NumQ <= Ctx.chainLength(); ++NumQ) {
      std::vector<double> X(Ctx.slots());
      for (auto &V : X)
        V = R.uniformReal(-1.0, 1.0);
      Ciphertext In = Encrypt.encryptValues(Enc, X, NumQ);

      ThreadPool::instance().setNumThreads(1);
      std::vector<Ciphertext> Sequential;
      for (int64_t S : Steps)
        Sequential.push_back(Eval.rotate(In, S));

      for (size_t Threads : {1u, 2u, 4u, 8u}) {
        ThreadPool::instance().setNumThreads(Threads);
        // The full step set as one batch.
        std::vector<Ciphertext> Batch = Eval.rotateHoisted(In, Steps);
        ASSERT_EQ(Batch.size(), Steps.size());
        for (size_t I = 0; I < Steps.size(); ++I)
          ASSERT_TRUE(sameCiphertext(Batch[I], Sequential[I]))
              << "seed " << Seed << " numQ " << NumQ << " step "
              << Steps[I] << " threads " << Threads;
        // Every step as a batch of one.
        for (size_t I = 0; I < Steps.size(); ++I) {
          std::vector<Ciphertext> One =
              Eval.rotateHoisted(In, {Steps[I]});
          ASSERT_TRUE(sameCiphertext(One[0], Sequential[I]))
              << "singleton seed " << Seed << " numQ " << NumQ
              << " step " << Steps[I] << " threads " << Threads;
        }
      }
    }
  }
  ThreadPool::instance().setNumThreads(0);
}

} // namespace
