//===----------------------------------------------------------------------===//
// Thread-count determinism tests: the pool's contract (see
// support/ThreadPool.h) is that every parallelized kernel produces
// bit-identical polynomials at every thread count, and that injected
// faults keep failing cleanly when the hot loops run on workers.
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"

#include "fhe/Encryptor.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ace;
using namespace ace::fhe;

namespace {

CkksParams testParams() {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 128;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = 6;
  P.LogSpecialModulus = 59;
  P.Seed = 77;
  return P;
}

/// Bitwise equality of every RNS component of every polynomial.
::testing::AssertionResult samePolys(const Ciphertext &A,
                                     const Ciphertext &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "polynomial count " << A.size() << " vs " << B.size();
  if (A.Scale != B.Scale)
    return ::testing::AssertionFailure()
           << "scale " << A.Scale << " vs " << B.Scale;
  for (size_t P = 0; P < A.size(); ++P) {
    const RnsPoly &PA = A.Polys[P], &PB = B.Polys[P];
    if (PA.numComponents() != PB.numComponents())
      return ::testing::AssertionFailure() << "component count differs";
    size_t N = PA.context().degree();
    for (size_t C = 0; C < PA.numComponents(); ++C)
      if (std::memcmp(PA.component(C), PB.component(C),
                      N * sizeof(uint64_t)) != 0)
        return ::testing::AssertionFailure()
               << "poly " << P << " component " << C << " differs";
  }
  return ::testing::AssertionSuccess();
}

class ThreadDeterminismTest : public ::testing::Test {
protected:
  ThreadDeterminismTest()
      : Ctx(testParams()), Enc(Ctx), Gen(Ctx), Pub(Gen.makePublicKey()) {
    Gen.fillEvalKeys(Keys, {1, 3, -1}, /*NeedRelin=*/true,
                     /*NeedConjugate=*/true);
    Eval = std::make_unique<Evaluator>(Ctx, Enc, Keys);
    Encrypt = std::make_unique<Encryptor>(Ctx, Pub);
  }
  void TearDown() override {
    ThreadPool::instance().setNumThreads(0);
    FaultInjector::instance().reset();
  }

  Context Ctx;
  Encoder Enc;
  KeyGenerator Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Encryptor> Encrypt;
};

TEST_F(ThreadDeterminismTest, EvaluatorOpsBitIdentical) {
  // Encrypt ONCE (encryption draws randomness); the op pipeline itself
  // is deterministic, so rerunning it on the same input ciphertext at a
  // different thread count must reproduce every bit.
  Rng R(5);
  std::vector<double> X(Ctx.slots()), W(Ctx.slots());
  for (auto &V : X)
    V = R.uniformReal(-1.0, 1.0);
  for (auto &V : W)
    V = R.uniformReal(-1.0, 1.0);
  Ciphertext In = Encrypt->encryptValues(Enc, X, Ctx.chainLength());

  auto Pipeline = [&](size_t Threads) {
    ThreadPool::instance().setNumThreads(Threads);
    // Touch every parallelized kernel family: ct-ct mul + relin
    // (key-switch digits), rescale, rotation (key switch + automorphism),
    // plaintext mul/add (pointwise limb loops), conjugation, mulByI.
    Ciphertext Ct = Eval->mul(In, In);
    Eval->rescaleInPlace(Ct);
    Ct = Eval->rotate(Ct, 3);
    Plaintext P = Eval->encodeForMul(Ct, W);
    Ct = Eval->mulPlain(Ct, P);
    Eval->rescaleInPlace(Ct);
    Eval->addConstInPlace(Ct, 0.25);
    Ct = Eval->conjugate(Ct);
    Ct = Eval->mulByI(Ct);
    Eval->addInPlace(Ct, Eval->rotate(Ct, 1));
    return Ct;
  };

  Ciphertext Serial = Pipeline(1);
  for (size_t Threads : {2u, 4u, 8u})
    EXPECT_TRUE(samePolys(Pipeline(Threads), Serial))
        << "at " << Threads << " threads";
}

TEST_F(ThreadDeterminismTest, FaultInjectionStaysCleanUnderThreads) {
  // The checked tier classifies injected faults identically when the
  // kernels underneath run on pool workers.
  ThreadPool::instance().setNumThreads(4);
  std::vector<double> X(Ctx.slots(), 0.25);
  auto A = Encrypt->checkedEncryptValues(Enc, X, Ctx.chainLength());
  auto B = Encrypt->checkedEncryptValues(Enc, X, Ctx.chainLength());
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());

  FaultInjector::instance().arm(FaultKind::ScaleDrift);
  auto Drifted = Encrypt->checkedEncryptValues(Enc, X, Ctx.chainLength());
  ASSERT_TRUE(Drifted.ok());
  auto Sum = Eval->checkedAdd(*Drifted, *A);
  ASSERT_FALSE(Sum.ok());
  EXPECT_EQ(Sum.status().code(), ErrorCode::ScaleMismatch);

  FaultInjector::instance().reset();
  FaultInjector::instance().arm(FaultKind::DropGaloisKey);
  auto Rot = Eval->checkedRotate(*A, 1);
  ASSERT_FALSE(Rot.ok());
  EXPECT_EQ(Rot.status().code(), ErrorCode::KeyMissing);

  // No residue: the same ops succeed once the injector is quiet, still
  // at 4 threads.
  FaultInjector::instance().reset();
  auto Ok = Eval->checkedMul(*A, *B);
  ASSERT_TRUE(Ok.ok()) << Ok.status().message();
  EXPECT_TRUE(Eval->checkedRotate(*A, 1).ok());
}

TEST(ThreadDeterminismBootstrap, BootstrapBitIdentical) {
  // Bootstrapping exercises every parallel site at once (ModRaise limb
  // lift, BSGS rotations/key switches, EvalMod mul chains, rescales).
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = 32;
  P.LogScale = 48;
  P.LogFirstModulus = 57;
  P.NumRescaleModuli = 24;
  P.LogSpecialModulus = 60;
  P.SparseSecret = true;
  P.Seed = 31;
  Context Ctx(P);
  Encoder Enc(Ctx);
  KeyGenerator Gen(Ctx);
  PublicKey Pub = Gen.makePublicKey();
  EvalKeys Keys;
  Evaluator Eval(Ctx, Enc, Keys);
  Bootstrapper Boot(Eval, BootstrapConfig{/*RangeK=*/12,
                                          /*DoubleAngleCount=*/2,
                                          /*ChebyshevDegree=*/39,
                                          /*ArcsineCorrection=*/true});
  Gen.fillEvalKeys(Keys, Boot.requiredRotations(), /*NeedRelin=*/true,
                   Boot.needsConjugation());
  Gen.fillGaloisKeys(Keys, Boot.requiredGaloisElements());
  Encryptor Encrypt(Ctx, Pub);

  Rng R(3);
  std::vector<double> X(Ctx.slots());
  for (auto &V : X)
    V = R.uniformReal(-0.5, 0.5);
  Ciphertext In = Encrypt.encryptValues(Enc, X, 1);

  ThreadPool::instance().setNumThreads(1);
  Ciphertext Serial = Boot.bootstrap(In, /*TargetNumQ=*/3);
  ThreadPool::instance().setNumThreads(4);
  Ciphertext Threaded = Boot.bootstrap(In, /*TargetNumQ=*/3);
  ThreadPool::instance().setNumThreads(0);
  EXPECT_TRUE(samePolys(Threaded, Serial));
}

} // namespace
