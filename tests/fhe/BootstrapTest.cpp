//===----------------------------------------------------------------------===//
// Bootstrapping tests: a full refresh round trip must preserve the
// message, lift the level, and respect the minimal-level target the
// compiler's bootstrap placement relies on (paper Sec. 4.4).
//===----------------------------------------------------------------------===//

#include "fhe/Bootstrapper.h"

#include "fhe/Encryptor.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::fhe;

namespace {

/// Toy bootstrappable parameters: insecure but structurally faithful.
CkksParams bootParams(size_t Slots) {
  CkksParams P;
  P.RingDegree = 1024;
  P.Slots = Slots;
  // A large scale keeps the relative base noise eps ~ 2^-39 small: the
  // EvalMod pipeline amplifies value noise by ~(2 pi span K)^2 (the
  // double-angle squarings quadruple errors per step), so the final
  // precision is roughly (2 pi span K)^2 * eps.
  P.LogScale = 48;
  P.LogFirstModulus = 57;
  // Depth budget: the trace after ModRaise adds log2(span) double-angle
  // levels, so small slot counts (large span) need a longer chain.
  P.NumRescaleModuli = 24;
  P.LogSpecialModulus = 60;
  P.SparseSecret = true;
  P.Seed = 31;
  return P;
}

class BootstrapFixture : public ::testing::TestWithParam<size_t> {
protected:
  void build(size_t Slots) {
    Ctx = std::make_unique<Context>(bootParams(Slots));
    Enc = std::make_unique<Encoder>(*Ctx);
    Gen = std::make_unique<KeyGenerator>(*Ctx);
    Pub = Gen->makePublicKey();
    Eval = std::make_unique<Evaluator>(*Ctx, *Enc, Keys);
    Boot = std::make_unique<Bootstrapper>(*Eval, BootstrapConfig{
                                                     /*RangeK=*/12,
                                                     /*DoubleAngleCount=*/2,
                                                     /*ChebyshevDegree=*/39,
                                                     /*ArcsineCorrection=*/true,
                                                 });
    Gen->fillEvalKeys(Keys, Boot->requiredRotations(), /*NeedRelin=*/true,
                      Boot->needsConjugation());
    Gen->fillGaloisKeys(Keys, Boot->requiredGaloisElements());
    Encrypt = std::make_unique<Encryptor>(*Ctx, Pub);
    Decrypt = std::make_unique<Decryptor>(*Ctx, Gen->secretKey());
  }

  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Encoder> Enc;
  std::unique_ptr<KeyGenerator> Gen;
  PublicKey Pub;
  EvalKeys Keys;
  std::unique_ptr<Evaluator> Eval;
  std::unique_ptr<Bootstrapper> Boot;
  std::unique_ptr<Encryptor> Encrypt;
  std::unique_ptr<Decryptor> Decrypt;
};

TEST_P(BootstrapFixture, RoundTripPreservesMessage) {
  build(GetParam());
  Rng R(3);
  std::vector<double> X(Ctx->slots());
  for (auto &V : X)
    V = R.uniformReal(-0.5, 0.5);

  // Encrypt at the bottom of the chain, as after a long computation.
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 1);
  ASSERT_EQ(Ct.numQ(), 1u);

  size_t Target = 3;
  Ciphertext Refreshed = Boot->bootstrap(Ct, Target);
  EXPECT_EQ(Refreshed.numQ(), Target);

  auto Out = Decrypt->decryptRealValues(*Enc, Refreshed);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], X[I], 2e-2) << "slot " << I;
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, BootstrapFixture,
                         ::testing::Values(16, 32, 64));

TEST_F(BootstrapFixture, RefreshedCiphertextSupportsFurtherMuls) {
  build(16);
  std::vector<double> X(Ctx->slots(), 0.4);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 1);
  Ciphertext Refreshed = Boot->bootstrap(Ct, 3);

  // Square twice on the refreshed ciphertext: 0.4^4 = 0.0256.
  Ciphertext Sq = Eval->mul(Refreshed, Refreshed);
  Eval->rescaleInPlace(Sq);
  Ciphertext Quad = Eval->mul(Sq, Sq);
  Eval->rescaleInPlace(Quad);
  auto Out = Decrypt->decryptRealValues(*Enc, Quad);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], 0.0256, 2e-2);
}

TEST_F(BootstrapFixture, MinimalLevelTargetConsumesFewerPrimes) {
  build(16);
  // The whole point of minimal-level placement: a lower target leaves the
  // pipeline working over fewer primes. Verify both targets function.
  std::vector<double> X(Ctx->slots(), 0.25);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 1);
  Ciphertext Low = Boot->bootstrap(Ct, 2);
  EXPECT_EQ(Low.numQ(), 2u);
  size_t MaxTarget = Ctx->chainLength() - Boot->depthCost();
  Ciphertext High = Boot->bootstrap(Ct, MaxTarget);
  EXPECT_EQ(High.numQ(), MaxTarget);
  auto OutLow = Decrypt->decryptRealValues(*Enc, Low);
  auto OutHigh = Decrypt->decryptRealValues(*Enc, High);
  for (size_t I = 0; I < X.size(); ++I) {
    EXPECT_NEAR(OutLow[I], 0.25, 2e-2);
    EXPECT_NEAR(OutHigh[I], 0.25, 2e-2);
  }
}

TEST_F(BootstrapFixture, RequiredRotationSetIsMinimal) {
  build(64);
  auto Steps = Boot->requiredRotations();
  // BSGS over 64 slots: 7 baby steps + 7 giant steps.
  EXPECT_EQ(Steps.size(), 14u);
  for (int64_t S : Steps) {
    EXPECT_GT(S, 0);
    EXPECT_LT(S, 64);
  }
}

TEST_F(BootstrapFixture, DepthCostIsStable) {
  build(16);
  int Depth = Boot->depthCost();
  EXPECT_GT(Depth, 5);
  EXPECT_LE(Depth, 26);
}

/// Lazy (cache-backed) sessions bootstrap through the checked tier:
/// checkedBootstrap materializes every rotation/Galois key up front, so
/// a governor refusal comes back in-band as ResourceExhausted BEFORE the
/// unchecked hot tier runs (where a lazy-keygen failure is a fatal
/// abort), and once the keys materialize the refresh works normally.
TEST_F(BootstrapFixture, LazyKeyBudgetRefusalShedsInBandBeforeBootstrap) {
  build(16);
  // Cache-backed twin of the fixture's evaluator: relin + conjugation
  // stay eager, every rotation/Galois key is declared only and
  // materializes through the governor on first use.
  RotationKeyCache Cache(*Ctx, *Gen);
  EvalKeys LazyKeys;
  Gen->fillEvalKeys(LazyKeys, {}, /*NeedRelin=*/true,
                    /*NeedConjugate=*/true);
  Evaluator LazyEval(*Ctx, *Enc, LazyKeys, &Cache);
  Bootstrapper LazyBoot(LazyEval, BootstrapConfig{
                                      /*RangeK=*/12,
                                      /*DoubleAngleCount=*/2,
                                      /*ChebyshevDegree=*/39,
                                      /*ArcsineCorrection=*/true,
                                  });
  for (uint64_t G : LazyBoot.requiredGaloisElements())
    Cache.declareGalois(G);
  for (int64_t S : LazyBoot.requiredRotations())
    Cache.declareRotation(S);

  std::vector<double> X(Ctx->slots(), 0.3);
  Ciphertext Ct = Encrypt->encryptValues(*Enc, X, 1);

  FaultInjector::instance().arm(FaultKind::BudgetExceeded, /*Count=*/1);
  auto Refused = LazyBoot.checkedBootstrap(Ct, 3);
  FaultInjector::instance().reset();
  ASSERT_FALSE(Refused.ok());
  EXPECT_EQ(Refused.status().code(), ErrorCode::ResourceExhausted);

  auto Ok = LazyBoot.checkedBootstrap(Ct, 3);
  ASSERT_TRUE(Ok.ok()) << Ok.status().message();
  EXPECT_EQ(Ok->numQ(), 3u);
  auto Out = Decrypt->decryptRealValues(*Enc, *Ok);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_NEAR(Out[I], 0.3, 2e-2);
}

} // namespace
