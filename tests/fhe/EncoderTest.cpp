//===----------------------------------------------------------------------===//
// Encoder tests: the special FFT against a naive DFT at the canonical
// roots, encode/decode round trips across packing densities, and the
// crucial consistency between slot rotations and ring automorphisms.
//===----------------------------------------------------------------------===//

#include "fhe/Encoder.h"

#include "fhe/Keys.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <complex>

using namespace ace;
using namespace ace::fhe;

namespace {

CkksParams smallParams(size_t N, size_t Slots, int Depth = 4) {
  CkksParams P;
  P.RingDegree = N;
  P.Slots = Slots;
  P.LogScale = 40;
  P.LogFirstModulus = 50;
  P.NumRescaleModuli = Depth;
  P.LogSpecialModulus = 59;
  P.Seed = 99;
  return P;
}

std::vector<std::complex<double>> randomComplexVector(size_t N,
                                                      uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::complex<double>> V(N);
  for (auto &X : V)
    X = {R.uniformReal(-1.0, 1.0), R.uniformReal(-1.0, 1.0)};
  return V;
}

TEST(EncoderTest, SpecialFftMatchesNaiveDft) {
  // fftSpecial must evaluate the coefficient vector at the canonical slot
  // roots zeta_j = omega^{5^j}: slots[j] = sum_k coeffs[k] * zeta_j^k.
  Context Ctx(smallParams(64, 16));
  Encoder Enc(Ctx);
  size_t N = 16;
  auto Coeffs = randomComplexVector(N, 3);
  auto Fast = Coeffs;
  Enc.fftSpecial(Fast);
  for (size_t J = 0; J < N; ++J) {
    std::complex<double> Zeta = Enc.slotRoot(J);
    std::complex<double> Acc = 0, Power = 1;
    for (size_t K = 0; K < N; ++K) {
      Acc += Coeffs[K] * Power;
      Power *= Zeta;
    }
    EXPECT_NEAR(std::abs(Fast[J] - Acc), 0.0, 1e-9)
        << "slot " << J << " mismatch";
  }
}

TEST(EncoderTest, SpecialFftRoundTrip) {
  Context Ctx(smallParams(128, 32));
  Encoder Enc(Ctx);
  auto Values = randomComplexVector(32, 5);
  auto Work = Values;
  Enc.fftSpecialInv(Work);
  Enc.fftSpecial(Work);
  for (size_t I = 0; I < Values.size(); ++I)
    EXPECT_NEAR(std::abs(Work[I] - Values[I]), 0.0, 1e-9);
}

struct PackingCase {
  size_t N;
  size_t Slots;
};

class EncodeRoundTripTest : public ::testing::TestWithParam<PackingCase> {};

TEST_P(EncodeRoundTripTest, EncodeDecode) {
  auto [N, Slots] = GetParam();
  Context Ctx(smallParams(N, Slots));
  Encoder Enc(Ctx);
  auto Values = randomComplexVector(Slots, 7);
  Plaintext P = Enc.encode(Values, Ctx.scale(), Ctx.chainLength());
  auto Decoded = Enc.decode(P);
  ASSERT_EQ(Decoded.size(), Slots);
  for (size_t I = 0; I < Slots; ++I)
    EXPECT_NEAR(std::abs(Decoded[I] - Values[I]), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Packings, EncodeRoundTripTest,
    ::testing::Values(PackingCase{64, 32},   // full packing
                      PackingCase{64, 16},   // sparse, gap 2
                      PackingCase{256, 32},  // sparse, gap 4
                      PackingCase{1024, 64}, // sparse, gap 8
                      PackingCase{4096, 2048} // full, larger ring
                      ));

TEST(EncoderTest, EncodeConstant) {
  Context Ctx(smallParams(256, 64));
  Encoder Enc(Ctx);
  Plaintext P = Enc.encodeConstant(0.375, Ctx.scale(), 2);
  auto Decoded = Enc.decode(P);
  for (const auto &V : Decoded) {
    EXPECT_NEAR(V.real(), 0.375, 1e-9);
    EXPECT_NEAR(V.imag(), 0.0, 1e-9);
  }
}

TEST(EncoderTest, EncodeRealZeroPads) {
  Context Ctx(smallParams(256, 64));
  Encoder Enc(Ctx);
  std::vector<double> Values = {1.0, -2.0, 3.0};
  Plaintext P = Enc.encodeReal(Values, Ctx.scale(), 1);
  auto Decoded = Enc.decode(P);
  EXPECT_NEAR(Decoded[0].real(), 1.0, 1e-6);
  EXPECT_NEAR(Decoded[1].real(), -2.0, 1e-6);
  EXPECT_NEAR(Decoded[2].real(), 3.0, 1e-6);
  for (size_t I = 3; I < Decoded.size(); ++I)
    EXPECT_NEAR(std::abs(Decoded[I]), 0.0, 1e-6);
}

/// The load-bearing property behind homomorphic rotations: applying the
/// Galois automorphism X -> X^{5^k} to an encoded polynomial must rotate
/// the slot vector left by k, for full AND sparse packing.
class RotationConsistencyTest : public ::testing::TestWithParam<PackingCase> {
};

TEST_P(RotationConsistencyTest, AutomorphismRotatesSlots) {
  auto [N, Slots] = GetParam();
  Context Ctx(smallParams(N, Slots));
  Encoder Enc(Ctx);
  auto Values = randomComplexVector(Slots, 11);

  for (int64_t Step : {1, 2, 5}) {
    Plaintext P = Enc.encode(Values, Ctx.scale(), 1);
    RnsPoly Poly = P.Poly;
    Poly.toCoeff();
    uint64_t Galois = galoisForRotation(N, Slots, Step);
    RnsPoly Rotated = Poly.automorphism(Galois);
    auto Decoded = Enc.decode(Rotated, Ctx.scale());
    for (size_t I = 0; I < Slots; ++I) {
      auto Expected = Values[(I + Step) % Slots];
      EXPECT_NEAR(std::abs(Decoded[I] - Expected), 0.0, 1e-6)
          << "step " << Step << " slot " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Packings, RotationConsistencyTest,
                         ::testing::Values(PackingCase{64, 32},
                                           PackingCase{256, 32},
                                           PackingCase{1024, 16}));

TEST(EncoderTest, ConjugationAutomorphism) {
  Context Ctx(smallParams(256, 64));
  Encoder Enc(Ctx);
  auto Values = randomComplexVector(64, 13);
  Plaintext P = Enc.encode(Values, Ctx.scale(), 1);
  RnsPoly Poly = P.Poly;
  Poly.toCoeff();
  RnsPoly Conj = Poly.automorphism(galoisForConjugation(256));
  auto Decoded = Enc.decode(Conj, Ctx.scale());
  for (size_t I = 0; I < 64; ++I)
    EXPECT_NEAR(std::abs(Decoded[I] - std::conj(Values[I])), 0.0, 1e-6);
}

TEST(EncoderTest, PlaintextProductIsElementwise) {
  // Pointwise polynomial products must multiply slots elementwise (the
  // SIMD batching property of paper Sec. 2.2).
  Context Ctx(smallParams(256, 64));
  Encoder Enc(Ctx);
  auto A = randomComplexVector(64, 17);
  auto B = randomComplexVector(64, 19);
  Plaintext PA = Enc.encode(A, Ctx.scale(), 2);
  Plaintext PB = Enc.encode(B, Ctx.scale(), 2);
  RnsPoly Prod = PA.Poly.mul(PB.Poly);
  Prod.toCoeff();
  auto Decoded = Enc.decode(Prod, Ctx.scale() * Ctx.scale());
  for (size_t I = 0; I < 64; ++I)
    EXPECT_NEAR(std::abs(Decoded[I] - A[I] * B[I]), 0.0, 1e-5);
}

TEST(EncoderTest, GarnerReconstructionExactForLargeValues) {
  // Round-trip signed coefficients through RNS at several levels.
  Context Ctx(smallParams(64, 16, 8));
  Encoder Enc(Ctx);
  size_t N = Ctx.degree();
  std::vector<long double> Coeffs(N, 0.0L);
  Rng R(23);
  for (auto &C : Coeffs)
    C = static_cast<long double>(R.uniformReal(-1.0, 1.0)) * 0x1.0p55L;
  // 2^55-sized values need at least two 40-bit-plus primes to fit.
  for (size_t NumQ : {size_t(2), size_t(3), size_t(9)}) {
    RnsPoly Poly = Enc.coeffsToPoly(Coeffs, NumQ);
    auto Back = Enc.polyToCoeffs(Poly);
    for (size_t I = 0; I < N; ++I)
      EXPECT_NEAR(static_cast<double>(Back[I] - llroundl(Coeffs[I])), 0.0,
                  1e-9)
          << "numQ " << NumQ;
  }
}

} // namespace
