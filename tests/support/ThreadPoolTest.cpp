//===----------------------------------------------------------------------===//
// ThreadPool unit tests: exact index coverage at every thread count,
// serial and nested fallback, exception propagation, and reconfiguration
// (see support/ThreadPool.h for the contract these pin down).
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace ace;

namespace {

/// Every test leaves the process-wide pool back at the ACE_THREADS
/// default so the remaining suites see the configuration they started
/// under.
class ThreadPoolTest : public ::testing::Test {
protected:
  void TearDown() override { ThreadPool::instance().setNumThreads(0); }
};

TEST_F(ThreadPoolTest, SpecParsing) {
  EXPECT_EQ(threadCountFromSpec(nullptr), 1u);
  EXPECT_EQ(threadCountFromSpec(""), 1u);
  EXPECT_EQ(threadCountFromSpec("not-a-number"), 1u);
  EXPECT_EQ(threadCountFromSpec("0"), 1u);
  EXPECT_EQ(threadCountFromSpec("-4"), 1u);
  EXPECT_EQ(threadCountFromSpec("1"), 1u);
  EXPECT_EQ(threadCountFromSpec("8"), 8u);
  EXPECT_EQ(threadCountFromSpec("999999"), 256u); // clamp
}

TEST_F(ThreadPoolTest, ReconfigurationRoundTrip) {
  ThreadPool &Pool = ThreadPool::instance();
  Pool.setNumThreads(5);
  EXPECT_EQ(Pool.numThreads(), 5u);
  Pool.setNumThreads(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  // 0 re-reads the environment default.
  Pool.setNumThreads(0);
  EXPECT_EQ(Pool.numThreads(), threadCountFromSpec(getenv("ACE_THREADS")));
}

/// parallelFor must call Fn(I) exactly once per index, whatever the
/// thread count - including the serial pool and single-index ranges.
TEST_F(ThreadPoolTest, ExactCoverageAtEveryThreadCount) {
  for (size_t Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool::instance().setNumThreads(Threads);
    for (size_t Len : {0u, 1u, 2u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> Hits(Len);
      parallelFor(0, Len, [&](size_t I) { Hits[I].fetch_add(1); });
      for (size_t I = 0; I < Len; ++I)
        EXPECT_EQ(Hits[I].load(), 1)
            << "index " << I << " at " << Threads << " threads";
    }
    // Non-zero Begin: the range, not just the length, is honored.
    std::vector<std::atomic<int>> Hits(10);
    parallelFor(3, 10, [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I < 10; ++I)
      EXPECT_EQ(Hits[I].load(), I >= 3 ? 1 : 0);
  }
}

/// Nested parallelFor serializes instead of deadlocking - including the
/// regression case of SEVERAL nested calls from one task body (a nested
/// call must restore, not clear, the in-task flag on exit).
TEST_F(ThreadPoolTest, NestedCallsSerialize) {
  ThreadPool::instance().setNumThreads(4);
  std::atomic<long> Sum{0};
  for (int Round = 0; Round < 50; ++Round) {
    parallelFor(0, 8, [&](size_t) {
      EXPECT_TRUE(ThreadPool::inWorker());
      parallelFor(0, 4, [&](size_t J) { Sum.fetch_add(long(J)); });
      // Second nested call in the same task: must still run inline.
      parallelFor(0, 4, [&](size_t J) { Sum.fetch_add(long(J)); });
    });
  }
  EXPECT_FALSE(ThreadPool::inWorker());
  EXPECT_EQ(Sum.load(), 50L * 8 * 2 * (0 + 1 + 2 + 3));
}

TEST_F(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  for (size_t Threads : {1u, 4u}) {
    ThreadPool::instance().setNumThreads(Threads);
    EXPECT_THROW(parallelFor(0, 100,
                             [&](size_t I) {
                               if (I == 37)
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // The pool is fully usable after a throwing region.
    std::atomic<int> Count{0};
    parallelFor(0, 100, [&](size_t) { Count.fetch_add(1); });
    EXPECT_EQ(Count.load(), 100);
  }
}

TEST_F(ThreadPoolTest, DeterministicResultAcrossThreadCounts) {
  // The determinism contract, in miniature: disjoint per-index writes
  // produce the same bytes at every thread count.
  std::vector<uint64_t> Reference;
  for (size_t Threads : {1u, 2u, 8u}) {
    ThreadPool::instance().setNumThreads(Threads);
    std::vector<uint64_t> Out(4096);
    parallelFor(0, Out.size(), [&](size_t I) {
      uint64_t X = I * 2654435761u;
      for (int R = 0; R < 8; ++R)
        X = X * 6364136223846793005ULL + 1442695040888963407ULL;
      Out[I] = X;
    });
    if (Reference.empty())
      Reference = Out;
    else
      EXPECT_EQ(Out, Reference) << Threads << " threads";
  }
}

/// Reconfiguring the pool from inside one of its own tasks would have it
/// join itself; the guard must reject that with Status(InvalidArgument),
/// leave the configuration unchanged, and keep the pool usable - at the
/// forked AND the serial/inline execution paths.
TEST_F(ThreadPoolTest, SetNumThreadsFromInsideTaskIsRejected) {
  for (size_t Threads : {1u, 4u}) {
    ThreadPool::instance().setNumThreads(Threads);
    std::atomic<int> Rejections{0};
    parallelFor(0, 8, [&](size_t) {
      Status S = ThreadPool::instance().setNumThreads(2);
      if (!S.ok() && S.code() == ErrorCode::InvalidArgument)
        Rejections.fetch_add(1);
    });
    EXPECT_EQ(Rejections.load(), 8) << Threads << " threads";
    EXPECT_EQ(ThreadPool::instance().numThreads(), Threads);
    // The pool survives the rejected call.
    std::atomic<int> Count{0};
    parallelFor(0, 100, [&](size_t) { Count.fetch_add(1); });
    EXPECT_EQ(Count.load(), 100);
  }
  // From a quiescent point reconfiguration still succeeds.
  EXPECT_TRUE(ThreadPool::instance().setNumThreads(2).ok());
  EXPECT_EQ(ThreadPool::instance().numThreads(), 2u);
}

TEST_F(ThreadPoolTest, ForkedRegionsCountInTelemetry) {
  telemetry::Telemetry &Tel = telemetry::Telemetry::instance();
  Tel.clear();
  Tel.setEnabled(true);
  ThreadPool::instance().setNumThreads(4);
  uint64_t Before =
      Tel.counters().get(telemetry::Counter::ParallelFor);
  parallelFor(0, 64, [](size_t) {});
  parallelFor(0, 64, [](size_t) {});
  uint64_t After = Tel.counters().get(telemetry::Counter::ParallelFor);
  EXPECT_EQ(After - Before, 2u);
  // Serial pools never fork, so nothing is counted.
  ThreadPool::instance().setNumThreads(1);
  parallelFor(0, 64, [](size_t) {});
  EXPECT_EQ(Tel.counters().get(telemetry::Counter::ParallelFor), After);
  Tel.setEnabled(false);
  Tel.clear();
}

} // namespace
