//===----------------------------------------------------------------------===//
// Resource governor tests: byte-size parsing, charge/release clamping,
// admission under and over the budget, reclaimer priority ordering, the
// BudgetExceeded fault hook, and the aggregated key-cache counters the
// metrics exporter reads.
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"
#include "support/ResourceGovernor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

using namespace ace;

namespace {

/// Restores the process-global governor around each test: the budget,
/// any Other-category charge the test added, and the counters.
struct ResourceGovernorTest : ::testing::Test {
  ResourceGovernorTest()
      : SavedBudget(ResourceGovernor::instance().budgetBytes()) {
    ResourceGovernor::instance().resetCounters();
  }
  ~ResourceGovernorTest() override {
    ResourceGovernor &Gov = ResourceGovernor::instance();
    Gov.setBudgetBytes(SavedBudget);
    // Clamp-at-zero makes a blanket release a safe way to drop whatever
    // Other-category charge a test left behind.
    Gov.release(MemCategory::Other, SIZE_MAX / 2);
    Gov.resetCounters();
    FaultInjector::instance().reset();
  }
  size_t SavedBudget;
};

TEST_F(ResourceGovernorTest, ParseByteSize) {
  size_t Out = 0;
  EXPECT_TRUE(parseByteSize("0", Out));
  EXPECT_EQ(Out, 0u);
  EXPECT_TRUE(parseByteSize("12345", Out));
  EXPECT_EQ(Out, 12345u);
  EXPECT_TRUE(parseByteSize("4k", Out));
  EXPECT_EQ(Out, 4096u);
  EXPECT_TRUE(parseByteSize("512M", Out));
  EXPECT_EQ(Out, 512u << 20);
  EXPECT_TRUE(parseByteSize("2g", Out));
  EXPECT_EQ(Out, size_t(2) << 30);
  EXPECT_FALSE(parseByteSize("", Out));
  EXPECT_FALSE(parseByteSize("-5", Out));
  EXPECT_FALSE(parseByteSize("12q", Out));
  EXPECT_FALSE(parseByteSize("m", Out));
  // Overflow must be rejected, not silently wrapped: 2^34 gibibytes
  // would multiply to 2^64 and truncate to 0 (= unlimited).
  EXPECT_FALSE(parseByteSize("17179869184g", Out));
  EXPECT_FALSE(parseByteSize("18014398509481984k", Out));
  // Past ULLONG_MAX strtoull clamps; errno catches it.
  EXPECT_FALSE(parseByteSize("99999999999999999999999", Out));
  // The largest representable value still parses.
  EXPECT_TRUE(parseByteSize("18446744073709551615", Out));
  EXPECT_EQ(Out, SIZE_MAX);
}

TEST_F(ResourceGovernorTest, ChargeReleaseClampsAtZero) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  size_t Before =
      Gov.stats().ChargedBytes[static_cast<size_t>(MemCategory::Other)];
  Gov.charge(MemCategory::Other, 1000);
  EXPECT_EQ(
      Gov.stats().ChargedBytes[static_cast<size_t>(MemCategory::Other)],
      Before + 1000);
  // A stray double-release clamps instead of wrapping the gauge.
  Gov.release(MemCategory::Other, Before + 5000);
  EXPECT_EQ(
      Gov.stats().ChargedBytes[static_cast<size_t>(MemCategory::Other)],
      0u);
}

TEST_F(ResourceGovernorTest, AdmitIsOkWithoutABudget) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(0);
  EXPECT_TRUE(Gov.admit(SIZE_MAX / 4, "unbounded").ok());
  EXPECT_EQ(Gov.stats().Sheds, 0u);
}

TEST_F(ResourceGovernorTest, OverBudgetShedsWithResourceExhausted) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(1 << 20);
  Gov.charge(MemCategory::Other, 1 << 20); // exactly at the limit
  Status S = Gov.admit(4096, "test charge");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
  EXPECT_NE(S.message().find("test charge"), std::string::npos);
  EXPECT_EQ(Gov.stats().Sheds, 1u);
  // Headroom restored -> admitted again.
  Gov.release(MemCategory::Other, 1 << 19);
  EXPECT_TRUE(Gov.admit(4096, "after release").ok());
}

TEST_F(ResourceGovernorTest, ReclaimersRunInPriorityOrderUntilCovered) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(1 << 20);
  Gov.charge(MemCategory::Other, 1 << 20);

  std::vector<int> CallOrder;
  // Registered high-priority-number first to prove ordering is by
  // priority, not registration sequence.
  uint64_t PoolId = Gov.addReclaimer(10, "fake-pool", [&](size_t Want) {
    CallOrder.push_back(10);
    ResourceGovernor::instance().release(MemCategory::Other, Want);
    return Want;
  });
  uint64_t CacheId = Gov.addReclaimer(0, "fake-cache", [&](size_t) {
    CallOrder.push_back(0);
    return size_t(0); // nothing cold: the next reclaimer must run
  });

  EXPECT_TRUE(Gov.admit(8192, "reclaimable").ok());
  ASSERT_EQ(CallOrder.size(), 2u);
  EXPECT_EQ(CallOrder[0], 0);
  EXPECT_EQ(CallOrder[1], 10);
  EXPECT_GE(Gov.stats().ReclaimedBytes, 8192u);
  EXPECT_EQ(Gov.stats().Sheds, 0u);

  Gov.removeReclaimer(PoolId);
  Gov.removeReclaimer(CacheId);
}

TEST_F(ResourceGovernorTest, RemovedReclaimerIsNeverCalled) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(1024);
  Gov.charge(MemCategory::Other, 2048);
  bool Called = false;
  uint64_t Id = Gov.addReclaimer(0, "gone", [&](size_t) {
    Called = true;
    return size_t(0);
  });
  Gov.removeReclaimer(Id);
  EXPECT_FALSE(Gov.admit(64, "x").ok());
  EXPECT_FALSE(Called);
}

TEST_F(ResourceGovernorTest, RemoveReclaimerWaitsForInFlightInvocation) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(1024);
  Gov.charge(MemCategory::Other, 2048); // every admit reclaims then sheds

  // State the callback touches late in its run, freed right after
  // removeReclaimer returns. If removal did not drain the in-flight
  // invocation this is a use-after-free (ASan) and a data race (TSan);
  // the deterministic check below also fails on plain builds.
  auto State = std::make_unique<std::atomic<int>>(0);
  std::atomic<int> *Raw = State.get();
  std::atomic<bool> Entered{false};
  uint64_t Id =
      Gov.addReclaimer(0, "slow", [&Entered, Raw](size_t) -> size_t {
        Entered.store(true, std::memory_order_release);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        Raw->store(1, std::memory_order_relaxed);
        return 0;
      });

  std::thread Admitter([&Gov] { (void)Gov.admit(64, "pressure"); });
  while (!Entered.load(std::memory_order_acquire))
    std::this_thread::yield();
  // Mid-invocation removal: must block until the callback returns.
  Gov.removeReclaimer(Id);
  EXPECT_EQ(Raw->load(std::memory_order_relaxed), 1)
      << "removeReclaimer returned while the callback was still running";
  State.reset(); // what ~RotationKeyCache does with the cache itself
  Admitter.join();
}

TEST_F(ResourceGovernorTest, BudgetExceededFaultForcesShedPath) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(0); // unlimited: only the fault can refuse
  FaultInjector::instance().arm(FaultKind::BudgetExceeded, /*Count=*/1);
  Status S = Gov.admit(64, "faulted");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(Gov.stats().Sheds, 1u);
  // One firing only: the next admission is clean.
  EXPECT_TRUE(Gov.admit(64, "after fault").ok());
}

TEST_F(ResourceGovernorTest, KeyCacheCountersAggregate) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.noteKeyCacheHit();
  Gov.noteKeyCacheHit();
  Gov.noteKeyCacheMiss();
  Gov.noteKeyCacheEviction();
  GovernorStats S = Gov.stats();
  EXPECT_EQ(S.KeyCacheHits, 2u);
  EXPECT_EQ(S.KeyCacheMisses, 1u);
  EXPECT_EQ(S.KeyCacheEvictions, 1u);
  Gov.resetCounters();
  EXPECT_EQ(Gov.stats().KeyCacheHits, 0u);
}

TEST_F(ResourceGovernorTest, RemainingBytesAndCategoryNames) {
  ResourceGovernor &Gov = ResourceGovernor::instance();
  Gov.setBudgetBytes(1 << 20);
  Gov.charge(MemCategory::Other, 1 << 19);
  GovernorStats S = Gov.stats();
  EXPECT_EQ(S.BudgetBytes, size_t(1) << 20);
  EXPECT_LE(S.remainingBytes(), size_t(1) << 19);
  EXPECT_STREQ(memCategoryName(MemCategory::LimbPool), "limb_pool");
  EXPECT_STREQ(memCategoryName(MemCategory::EvalKeys), "eval_keys");
  EXPECT_STREQ(memCategoryName(MemCategory::Sessions), "sessions");
  EXPECT_STREQ(memCategoryName(MemCategory::Other), "other");
}

} // namespace
