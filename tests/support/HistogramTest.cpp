//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

using namespace ace;

namespace {

TEST(Histogram, BucketGeometryRoundTrips) {
  // Small values are exact: one bucket per nanosecond.
  for (uint64_t N = 0; N < Histogram::kSubBuckets; ++N) {
    EXPECT_EQ(Histogram::bucketIndex(N), N);
    EXPECT_EQ(Histogram::bucketLowerNanos(N), N);
    EXPECT_EQ(Histogram::bucketUpperNanos(N), N + 1);
  }
  // Every value lands in a bucket whose [lower, upper) range contains
  // it, across the full magnitude sweep.
  for (uint64_t N : {8ull, 9ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                     123456ull, 1000000000ull, ~0ull >> 1, ~0ull}) {
    size_t Idx = Histogram::bucketIndex(N);
    ASSERT_LT(Idx, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucketLowerNanos(Idx), N);
    if (Idx + 1 < Histogram::kBuckets)
      EXPECT_GT(Histogram::bucketUpperNanos(Idx), N);
    else // The top bucket saturates; its upper bound is inclusive.
      EXPECT_GE(Histogram::bucketUpperNanos(Idx), N);
  }
  // Bucket bounds tile the axis: upper(i) == lower(i+1).
  for (size_t I = 0; I + 1 < Histogram::kBuckets; ++I)
    EXPECT_EQ(Histogram::bucketUpperNanos(I),
              Histogram::bucketLowerNanos(I + 1));
}

TEST(Histogram, RelativeBucketWidthBounded) {
  // Log-linear contract: above the exact range, bucket width is at most
  // lower / kSubBuckets (12.5% relative error).
  for (size_t I = Histogram::kSubBuckets; I < Histogram::kBuckets - 1; ++I) {
    uint64_t Lo = Histogram::bucketLowerNanos(I);
    uint64_t Hi = Histogram::bucketUpperNanos(I);
    EXPECT_LE(Hi - Lo, Lo / Histogram::kSubBuckets + 1)
        << "bucket " << I << " [" << Lo << "," << Hi << ")";
  }
}

/// Exact order statistic matching Snapshot::quantileSeconds's rank
/// convention (nearest-rank on Q * (Count - 1)).
double exactQuantileSeconds(std::vector<uint64_t> SortedNanos, double Q) {
  size_t Rank = static_cast<size_t>(
      Q * static_cast<double>(SortedNanos.size() - 1) + 0.5);
  if (Rank >= SortedNanos.size())
    Rank = SortedNanos.size() - 1;
  return static_cast<double>(SortedNanos[Rank]) * 1e-9;
}

TEST(Histogram, QuantilesWithinOneBucketOfExact) {
  // The tentpole accuracy contract: every quantile estimate is within
  // one log-linear bucket (<= 12.5% relative) of the exact sorted-sample
  // percentile, across a heavy-tailed latency-like distribution.
  std::mt19937_64 Gen(42);
  std::lognormal_distribution<double> Dist(/*m=*/11.0, /*s=*/1.5);
  Histogram H;
  std::vector<uint64_t> Values;
  for (int I = 0; I < 20000; ++I) {
    uint64_t Nanos = static_cast<uint64_t>(Dist(Gen));
    Values.push_back(Nanos);
    H.recordNanos(Nanos);
  }
  std::sort(Values.begin(), Values.end());
  Histogram::Snapshot S = H.snapshot();
  ASSERT_EQ(S.Count, Values.size());
  for (double Q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    double Exact = exactQuantileSeconds(Values, Q);
    double Est = S.quantileSeconds(Q);
    double Tol =
        Exact / static_cast<double>(Histogram::kSubBuckets) + 2e-9;
    EXPECT_NEAR(Est, Exact, Tol) << "Q=" << Q;
  }
  // Extremes are exact (clamped to observed min/max).
  EXPECT_DOUBLE_EQ(S.quantileSeconds(0.0), S.minSeconds());
  EXPECT_DOUBLE_EQ(S.quantileSeconds(1.0), S.maxSeconds());
}

TEST(Histogram, EmptyAndEdgeCases) {
  Histogram H;
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_DOUBLE_EQ(S.quantileSeconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(S.minSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(S.meanSeconds(), 0.0);

  // Negative and NaN clamp to zero; huge values saturate, not overflow.
  H.recordSeconds(-1.0);
  H.recordSeconds(std::numeric_limits<double>::quiet_NaN());
  H.recordSeconds(1e30);
  EXPECT_EQ(H.count(), 3u);
  S = H.snapshot();
  EXPECT_EQ(S.Buckets[0], 2u);
  EXPECT_EQ(S.Buckets[Histogram::kBuckets - 1], 1u);
}

TEST(Histogram, MergeCombinesStreams) {
  Histogram A, B;
  for (int I = 1; I <= 100; ++I)
    A.recordNanos(static_cast<uint64_t>(I) * 1000);
  for (int I = 101; I <= 200; ++I)
    B.recordNanos(static_cast<uint64_t>(I) * 1000);
  Histogram Merged;
  Merged.merge(A);
  Merged.merge(B);
  Histogram::Snapshot S = Merged.snapshot();
  EXPECT_EQ(S.Count, 200u);
  EXPECT_EQ(S.MinNanos, 1000u);
  EXPECT_EQ(S.MaxNanos, 200000u);
  // Snapshot-level merge agrees with histogram-level merge.
  Histogram::Snapshot S2 = A.snapshot();
  S2.merge(B.snapshot());
  EXPECT_EQ(S2.Count, S.Count);
  EXPECT_EQ(S2.Buckets, S.Buckets);
  EXPECT_EQ(S2.SumNanos, S.SumNanos);
}

TEST(Histogram, CumulativeCountMatchesBuckets) {
  Histogram H;
  for (uint64_t N : {10ull, 100ull, 1000ull, 10000ull})
    H.recordNanos(N);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.cumulativeCount(0.0), 0u);
  EXPECT_EQ(S.cumulativeCount(1e-9 * 10), 1u);
  EXPECT_EQ(S.cumulativeCount(1e-9 * 5000), 3u);
  EXPECT_EQ(S.cumulativeCount(1.0), 4u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  // Lock-free contract: N threads x M records, every one lands.
  Histogram H;
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([&H, T] {
      std::mt19937_64 Gen(static_cast<uint64_t>(T) + 1);
      for (int I = 0; I < kPer; ++I)
        H.recordNanos(Gen() % 1000000);
    });
  for (auto &T : Ts)
    T.join();
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<uint64_t>(kThreads) * kPer);
  uint64_t BucketSum = 0;
  for (uint64_t B : S.Buckets)
    BucketSum += B;
  EXPECT_EQ(BucketSum, S.Count);
}

TEST(Histogram, QuantilesJsonShape) {
  Histogram H;
  H.recordSeconds(0.001);
  H.recordSeconds(0.002);
  std::string J = H.snapshot().quantilesJson();
  EXPECT_NE(J.find("\"count\": 2"), std::string::npos) << J;
  for (const char *Key : {"\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":",
                          "\"mean\":", "\"max\":"})
    EXPECT_NE(J.find(Key), std::string::npos) << J;
}

} // namespace
