//===----------------------------------------------------------------------===//
//
// Part of the ANT-ACE reproduction, under the Apache License v2.0 with LLVM
// Exceptions. See LICENSE for license information.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
//
// Telemetry unit tests: counter atomicity under threads, span nesting in
// the event buffer, JSON escaping, the Chrome trace shape, health
// aggregation, and the disabled-path contract (no events, no counts).
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"
#include "support/MetricsRegistry.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <fstream>

#include <sstream>
#include <thread>
#include <vector>

using namespace ace;
using namespace ace::telemetry;

namespace {

/// Every test runs against the process-wide singleton, so serialize state:
/// clear + enable on entry, clear + restore-disabled on exit.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Telemetry::instance().clear();
    Telemetry::instance().setEnabled(true);
  }
  void TearDown() override {
    Telemetry::instance().setEnabled(false);
    Telemetry::instance().clear();
  }
};

TEST_F(TelemetryTest, CounterNamesRoundTrip) {
  for (size_t I = 0; I < kCounterCount; ++I) {
    Counter C = static_cast<Counter>(I);
    Counter Back;
    ASSERT_TRUE(counterFromName(counterName(C), Back))
        << counterName(C);
    EXPECT_EQ(C, Back);
  }
  Counter Out;
  EXPECT_FALSE(counterFromName("no-such-counter", Out));
}

TEST_F(TelemetryTest, AtomicCountersUnderThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([] {
      for (uint64_t I = 0; I < kPerThread; ++I)
        Telemetry::instance().count(Counter::Rotate);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(kThreads * kPerThread,
            Telemetry::instance().counterValue(Counter::Rotate));
}

TEST_F(TelemetryTest, DisabledPathRecordsNothing) {
  Telemetry::instance().setEnabled(false);
  {
    TraceSpan Span("test", "invisible");
    FheOpSpan Op;
    if (enabled()) // mirrors every hook site
      Op.begin(Counter::CtCtMul, 3, 1.0, 10.0);
  }
  EXPECT_EQ(0u, Telemetry::instance().eventCount());
  EXPECT_EQ(0u, Telemetry::instance().counterValue(Counter::CtCtMul));
  EXPECT_TRUE(Telemetry::instance().health().empty());
}

TEST_F(TelemetryTest, SpanNestingByContainment) {
  {
    TraceSpan Outer("test", "outer");
    { TraceSpan Inner("test", "inner"); }
  }
  auto Events = Telemetry::instance().eventsCopy();
  ASSERT_EQ(2u, Events.size());
  // Inner closes first, so it lands first in the buffer.
  const TraceEvent &Inner = Events[0];
  const TraceEvent &Outer = Events[1];
  EXPECT_EQ("inner", Inner.Name);
  EXPECT_EQ("outer", Outer.Name);
  // chrome://tracing infers nesting from ts/dur containment per thread.
  EXPECT_EQ(Inner.Tid, Outer.Tid);
  EXPECT_GE(Inner.TsUs, Outer.TsUs);
  EXPECT_LE(Inner.TsUs + Inner.DurUs, Outer.TsUs + Outer.DurUs + 1e-6);
}

TEST_F(TelemetryTest, PhaseSecondsAccumulateAcrossSpans) {
  { TraceSpan A("test", "phase-x"); }
  { TraceSpan B("test", "phase-x"); }
  EXPECT_GT(Telemetry::instance().phaseSeconds("phase-x"), 0.0);
  EXPECT_EQ(0.0, Telemetry::instance().phaseSeconds("phase-y"));
}

TEST_F(TelemetryTest, TimingRegistryAdapterRecordsWhenDisabled) {
  Telemetry::instance().setEnabled(false);
  TimingRegistry Also;
  { TraceSpan Span("test", "compat", &Also); }
  // The adapter keeps legacy consumers fed even with telemetry off...
  EXPECT_GT(Also.get("compat"), 0.0);
  // ...without leaking anything into the disabled telemetry buffer.
  EXPECT_EQ(0u, Telemetry::instance().eventCount());
}

TEST_F(TelemetryTest, FheOpSpanRecordsHealthAndEvent) {
  {
    FheOpSpan Op;
    Op.begin(Counter::Rescale, /*NumQ=*/5, /*Scale=*/1024.0,
             /*NoiseBudgetBits=*/42.5);
  }
  EXPECT_EQ(1u, Telemetry::instance().counterValue(Counter::Rescale));
  auto Events = Telemetry::instance().eventsCopy();
  ASSERT_EQ(1u, Events.size());
  EXPECT_EQ("rescale", Events[0].Name);
  EXPECT_EQ(5, Events[0].Level);
  EXPECT_DOUBLE_EQ(10.0, Events[0].Log2Scale);
  EXPECT_DOUBLE_EQ(42.5, Events[0].NoiseBudgetBits);

  auto Health = Telemetry::instance().health();
  ASSERT_EQ(1u, Health.size());
  EXPECT_EQ(Counter::Rescale, Health[0].first);
  EXPECT_EQ(1u, Health[0].second.Count);
  EXPECT_EQ(5, Health[0].second.MinLevel);
  EXPECT_EQ(5, Health[0].second.MaxLevel);
  EXPECT_DOUBLE_EQ(42.5, Health[0].second.MinNoiseBudgetBits);
}

TEST_F(TelemetryTest, JsonEscape) {
  EXPECT_EQ("plain", jsonEscape("plain"));
  EXPECT_EQ("a\\\"b", jsonEscape("a\"b"));
  EXPECT_EQ("a\\\\b", jsonEscape("a\\b"));
  EXPECT_EQ("a\\nb\\tc", jsonEscape("a\nb\tc"));
  EXPECT_EQ("ctl\\u0001", jsonEscape(std::string("ctl\x01")));
}

TEST_F(TelemetryTest, ChromeTraceShape) {
  { TraceSpan Span("cat", "span \"quoted\""); }
  Telemetry::instance().count(Counter::Bootstrap);
  std::ostringstream OS;
  Telemetry::instance().writeChromeTrace(OS);
  std::string S = OS.str();
  EXPECT_NE(std::string::npos, S.find("\"traceEvents\":["));
  EXPECT_NE(std::string::npos, S.find("\"name\":\"span \\\"quoted\\\"\""));
  EXPECT_NE(std::string::npos, S.find("\"ph\":\"X\""));
  EXPECT_NE(std::string::npos, S.find("\"droppedEvents\":0"));
}

TEST_F(TelemetryTest, SinkReceivesEvents) {
  struct CountingSink : TraceSink {
    size_t Seen = 0;
    void onEvent(const TraceEvent &) override { ++Seen; }
  } Sink;
  Telemetry::instance().setSink(&Sink);
  { TraceSpan Span("test", "sinked"); }
  Telemetry::instance().setSink(nullptr);
  EXPECT_EQ(1u, Sink.Seen);
}

TEST_F(TelemetryTest, SnapshotDeltas) {
  Telemetry::instance().count(Counter::CtCtMul, 3);
  Telemetry::instance().recordSnapshot("after-three");
  Telemetry::instance().count(Counter::CtCtMul, 2);
  Telemetry::instance().recordSnapshot("after-five");
  auto Snaps = Telemetry::instance().snapshots();
  ASSERT_EQ(2u, Snaps.size());
  EXPECT_EQ("after-three", Snaps[0].first);
  EXPECT_EQ(3u, Snaps[0].second.get(Counter::CtCtMul));
  CounterSnapshot D = Snaps[1].second.deltaSince(Snaps[0].second);
  EXPECT_EQ(2u, D.get(Counter::CtCtMul));
}

TEST_F(TelemetryTest, ReportMentionsCountersAndJsonParsesShape) {
  Telemetry::instance().count(Counter::Rotate, 7);
  std::string Text = Telemetry::instance().reportString(/*Json=*/false);
  EXPECT_NE(std::string::npos, Text.find("rotate"));
  std::string Json = Telemetry::instance().reportString(/*Json=*/true);
  EXPECT_EQ('{', Json.front());
  EXPECT_NE(std::string::npos, Json.find("\"rotate\":7"));
}

TEST_F(TelemetryTest, RssSampleFoldsIntoPeak) {
  Telemetry::instance().sampleRss("rss-test");
  // Linux exposes VmRSS; elsewhere the sample is 0 and peak stays 0.
#if defined(__linux__)
  EXPECT_GT(Telemetry::instance().peakRssBytes(), 0u);
#endif
  auto Events = Telemetry::instance().eventsCopy();
  ASSERT_EQ(1u, Events.size());
  EXPECT_EQ('C', Events[0].Phase);
}

TEST_F(TelemetryTest, ThreadNamesEmitChromeMetadata) {
  std::thread([] {
    Telemetry::instance().nameThread("ace-test-worker");
    TraceSpan Span("test", "named-thread-work");
  }).join();
  std::ostringstream OS;
  Telemetry::instance().writeChromeTrace(OS);
  std::string S = OS.str();
  EXPECT_NE(std::string::npos, S.find("\"ph\":\"M\""));
  EXPECT_NE(std::string::npos, S.find("\"thread_name\""));
  EXPECT_NE(std::string::npos, S.find("ace-test-worker"));
  EXPECT_NE(std::string::npos, S.find("\"process_name\""));
}

TEST_F(TelemetryTest, RequestScopeAttributesCounterDeltas) {
  RequestContext Ctx;
  Ctx.TraceId = 0x1234;
  RequestContext Inner;
  Telemetry::instance().count(Counter::Rotate, 2); // before: unattributed
  {
    RequestScope Scope(Ctx);
    Telemetry::instance().count(Counter::Rotate, 5);
    Telemetry::instance().count(Counter::CtCtMul, 3);
    // Nested scopes save and restore the outer request.
    {
      RequestScope InnerScope(Inner);
      Telemetry::instance().count(Counter::Rescale, 1);
    }
    Telemetry::instance().count(Counter::Rotate, 1);
  }
  Telemetry::instance().count(Counter::Rotate, 7); // after: unattributed
  CounterSnapshot Delta = Ctx.opSnapshot();
  EXPECT_EQ(6u, Delta.get(Counter::Rotate));
  EXPECT_EQ(3u, Delta.get(Counter::CtCtMul));
  EXPECT_EQ(0u, Delta.get(Counter::Rescale)); // went to the inner request
  EXPECT_EQ(1u, Inner.opSnapshot().get(Counter::Rescale));
  // Global counters saw everything regardless of attribution.
  EXPECT_EQ(15u, Telemetry::instance().counterValue(Counter::Rotate));
}

TEST_F(TelemetryTest, RequestScopeCollectsSpansAndTraceIds) {
  RequestContext Ctx;
  Ctx.TraceId = 0xabcdef;
  {
    RequestScope Scope(Ctx);
    { TraceSpan Span("test", "inside-request"); }
  }
  ASSERT_EQ(1u, Ctx.Spans.size());
  EXPECT_EQ("inside-request", Ctx.Spans[0].first);
  EXPECT_GE(Ctx.Spans[0].second, 0.0);
  // The emitted event carries the owning request's trace id...
  auto Events = Telemetry::instance().eventsCopy();
  ASSERT_EQ(1u, Events.size());
  EXPECT_EQ(0xabcdefu, Events[0].Id);
  // ...and the Chrome trace renders it as a joinable arg.
  std::ostringstream OS;
  Telemetry::instance().writeChromeTrace(OS);
  EXPECT_NE(std::string::npos,
            OS.str().find("\"trace\":\"0x0000000000abcdef\""));
}

TEST_F(TelemetryTest, PrometheusExpositionCoversBuiltinsAndRegistered) {
  Telemetry::instance().count(Counter::Rotate, 4);
  {
    FheOpSpan Op;
    Op.begin(Counter::Rotate, 3, 2.0, 30.0);
  }
  metrics::MetricsRegistry &Reg = metrics::MetricsRegistry::instance();
  uint64_t GaugeId = Reg.addGauge("ace_test_gauge", "A test gauge.",
                                  "kind=\"unit\"", [] { return 42.0; });
  Histogram H;
  H.recordSeconds(0.002);
  uint64_t HistId =
      Reg.addHistogram("ace_test_seconds", "A test histogram.", "", &H);
  std::string S = Reg.prometheusString();
  Reg.remove(GaugeId);
  Reg.remove(HistId);
  EXPECT_NE(std::string::npos, S.find("# TYPE ace_ops_total counter"));
  EXPECT_NE(std::string::npos, S.find("ace_ops_total{op=\"rotate\"} 5"));
  // Satellite: dropped trace events are a first-class metric.
  EXPECT_NE(std::string::npos,
            S.find("ace_trace_dropped_events_total 0"));
  EXPECT_NE(std::string::npos,
            S.find("ace_fhe_op_seconds_bucket{op=\"rotate\",le=\"+Inf\"} 1"));
  EXPECT_NE(std::string::npos, S.find("ace_fhe_op_seconds_count"));
  EXPECT_NE(std::string::npos,
            S.find("ace_test_gauge{kind=\"unit\"} 42"));
  EXPECT_NE(std::string::npos, S.find("# TYPE ace_test_seconds histogram"));
  EXPECT_NE(std::string::npos, S.find("ace_test_seconds_count 1"));
  // After remove(), the registered families disappear.
  std::string After = Reg.prometheusString();
  EXPECT_EQ(std::string::npos, After.find("ace_test_gauge"));
}

TEST_F(TelemetryTest, EventLogRenderLineSchema) {
  obs::RequestLogEntry E;
  E.SessionId = 3;
  E.TraceId = 0xfeed;
  E.RequestId = 9;
  E.ClientTag = 12;
  E.StatusName = "ok";
  E.QueueSeconds = 0.001;
  E.ExecSeconds = 0.02;
  E.TotalSeconds = 0.021;
  E.OpDelta.Values[static_cast<size_t>(Counter::Rotate)] = 8;
  E.HasMinNoiseBudget = true;
  E.MinNoiseBudgetBits = 17.25;
  E.Spans.emplace_back("executor", 0.0195);
  E.Spans.emplace_back("executor", 0.0005); // aggregated with the first

  std::string Line = obs::EventLog::renderLine(E, /*Slow=*/false);
  EXPECT_EQ('\n', Line.back());
  for (const char *Key :
       {"\"event\":\"request\"", "\"session\":3",
        "\"trace_id\":\"0x000000000000feed\"", "\"request\":9",
        "\"client_tag\":12", "\"status\":\"ok\"", "\"queue_s\":0.001000",
        "\"exec_s\":0.020000", "\"total_s\":0.021000", "\"rotate\":8",
        "\"min_noise_budget_bits\":17.25"})
    EXPECT_NE(std::string::npos, Line.find(Key)) << Key << " in " << Line;
  EXPECT_EQ(std::string::npos, Line.find("\"slow\""));

  // The slow upgrade adds the span breakdown and a health snapshot.
  {
    FheOpSpan Op;
    Op.begin(Counter::Rescale, 4, 1.0, 21.5);
  }
  std::string Slow = obs::EventLog::renderLine(E, /*Slow=*/true);
  for (const char *Key :
       {"\"slow\":true",
        "\"spans\":{\"executor\":{\"seconds\":0.020000,\"count\":2}",
        "\"health\":{\"rescale\":{\"count\":1,\"minLevel\":4"})
    EXPECT_NE(std::string::npos, Slow.find(Key)) << Key << " in " << Slow;
}

TEST_F(TelemetryTest, EventLogWritesBoundedJsonl) {
  std::string Path = ::testing::TempDir() + "/ace_event_log_test.jsonl";
  obs::EventLog &Log = obs::EventLog::instance();
  ASSERT_TRUE(Log.open(Path).ok());
  Log.setMaxRecords(2);
  obs::RequestLogEntry E;
  E.TraceId = 0x1;
  for (int I = 0; I < 3; ++I) {
    E.RequestId = static_cast<uint64_t>(I);
    Log.record(E);
  }
  EXPECT_EQ(2u, Log.writtenCount());
  EXPECT_EQ(1u, Log.droppedCount()); // bounded: the third line is counted
  Log.close();
  Log.setMaxRecords(uint64_t(1) << 20);
  // Closed again, record() is a no-op.
  Log.record(E);
  EXPECT_EQ(2u, Log.writtenCount());

  std::ifstream IS(Path);
  std::string L1, L2, L3;
  ASSERT_TRUE(std::getline(IS, L1));
  ASSERT_TRUE(std::getline(IS, L2));
  EXPECT_FALSE(std::getline(IS, L3));
  EXPECT_NE(std::string::npos, L1.find("\"request\":0"));
  EXPECT_NE(std::string::npos, L2.find("\"request\":1"));
  std::remove(Path.c_str());
}

TEST(TimingRegistryTest, IndexedAddPreservesFirstSeenOrder) {
  TimingRegistry T;
  T.add("b", 1.0);
  T.add("a", 2.0);
  T.add("b", 3.0);
  ASSERT_EQ(2u, T.entries().size());
  EXPECT_EQ("b", T.entries()[0].first);
  EXPECT_EQ("a", T.entries()[1].first);
  EXPECT_DOUBLE_EQ(4.0, T.get("b"));
  EXPECT_DOUBLE_EQ(2.0, T.get("a"));
  EXPECT_DOUBLE_EQ(6.0, T.total());
  T.clear();
  EXPECT_TRUE(T.entries().empty());
  EXPECT_DOUBLE_EQ(0.0, T.get("b"));
  T.add("c", 1.5);
  EXPECT_DOUBLE_EQ(1.5, T.get("c"));
}

} // namespace
