//===----------------------------------------------------------------------===//
// Unit tests for timing utilities and memory accounting.
//===----------------------------------------------------------------------===//

#include "support/MemTrack.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace ace;

TEST(TimerTest, RegistryAccumulates) {
  TimingRegistry Reg;
  Reg.add("vector-ir", 1.5);
  Reg.add("ckks-ir", 0.5);
  Reg.add("vector-ir", 0.5);
  EXPECT_DOUBLE_EQ(Reg.get("vector-ir"), 2.0);
  EXPECT_DOUBLE_EQ(Reg.get("ckks-ir"), 0.5);
  EXPECT_DOUBLE_EQ(Reg.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(Reg.total(), 2.5);
}

TEST(TimerTest, EntriesPreserveFirstSeenOrder) {
  TimingRegistry Reg;
  Reg.add("b", 1);
  Reg.add("a", 1);
  Reg.add("b", 1);
  ASSERT_EQ(Reg.entries().size(), 2u);
  EXPECT_EQ(Reg.entries()[0].first, "b");
  EXPECT_EQ(Reg.entries()[1].first, "a");
}

TEST(TimerTest, ScopedTimerRecords) {
  TimingRegistry Reg;
  {
    ScopedTimer T(Reg, "phase");
  }
  EXPECT_GE(Reg.get("phase"), 0.0);
  EXPECT_EQ(Reg.entries().size(), 1u);
}

TEST(TimerTest, WallTimerAdvances) {
  WallTimer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink += I;
  EXPECT_GT(T.seconds(), 0.0);
}

TEST(MemTrackTest, Categories) {
  MemTracker M;
  M.add(MemCategoryKind::MC_RelinKey, 1000);
  M.add(MemCategoryKind::MC_RotationKeys, 2000);
  M.add(MemCategoryKind::MC_Ciphertexts, 500);
  EXPECT_EQ(M.get(MemCategoryKind::MC_RelinKey), 1000u);
  EXPECT_EQ(M.evaluationKeyBytes(), 3000u);
  EXPECT_EQ(M.total(), 3500u);
  M.clear();
  EXPECT_EQ(M.total(), 0u);
}

TEST(MemTrackTest, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512.0 B");
  EXPECT_EQ(formatBytes(2048), "2.0 KB");
  EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(MemTrackTest, CategoryNames) {
  EXPECT_STREQ(memCategoryName(MemCategoryKind::MC_SecretKey), "secret-key");
  EXPECT_STREQ(memCategoryName(MemCategoryKind::MC_RotationKeys),
               "rotation-keys");
}
