//===----------------------------------------------------------------------===//
// Unit tests for the fault-injection harness (arming, skip/count
// semantics, spec parsing). The end-to-end property tests - every
// injected fault surfaces as a clean Status through the runtime - live in
// tests/fhe/FaultInjectionTest.cpp.
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <gtest/gtest.h>

using namespace ace;

namespace {

/// Every test leaves the process-wide singleton clean.
class FaultInjectorTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, DisabledByDefault) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_FALSE(FI.enabled());
  EXPECT_FALSE(FI.shouldFire(FaultKind::ScaleDrift));
  EXPECT_EQ(FI.firedCount(FaultKind::ScaleDrift), 0u);
}

TEST_F(FaultInjectorTest, FiresArmedCountThenDisarms) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm(FaultKind::DropGaloisKey, /*Count=*/2);
  EXPECT_TRUE(FI.enabled());
  EXPECT_TRUE(FI.shouldFire(FaultKind::DropGaloisKey));
  EXPECT_TRUE(FI.shouldFire(FaultKind::DropGaloisKey));
  EXPECT_FALSE(FI.shouldFire(FaultKind::DropGaloisKey));
  EXPECT_EQ(FI.firedCount(FaultKind::DropGaloisKey), 2u);
  EXPECT_FALSE(FI.enabled());
}

TEST_F(FaultInjectorTest, KindsAreIndependent) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm(FaultKind::ScaleDrift);
  EXPECT_FALSE(FI.shouldFire(FaultKind::SlotCorrupt));
  EXPECT_TRUE(FI.shouldFire(FaultKind::ScaleDrift));
}

TEST_F(FaultInjectorTest, SkipDelaysFiring) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm(FaultKind::AllocFail, /*Count=*/1, /*SkipFirst=*/2);
  EXPECT_FALSE(FI.shouldFire(FaultKind::AllocFail)); // skip 1
  EXPECT_FALSE(FI.shouldFire(FaultKind::AllocFail)); // skip 2
  EXPECT_TRUE(FI.shouldFire(FaultKind::AllocFail));  // fires
  EXPECT_FALSE(FI.shouldFire(FaultKind::AllocFail)); // exhausted
}

TEST_F(FaultInjectorTest, UnlimitedCountKeepsFiring) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm(FaultKind::DropRelinKey, /*Count=*/-1);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(FI.shouldFire(FaultKind::DropRelinKey));
  EXPECT_EQ(FI.firedCount(FaultKind::DropRelinKey), 10u);
  EXPECT_TRUE(FI.enabled());
}

TEST_F(FaultInjectorTest, DisarmStopsFiringButKeepsCounter) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm(FaultKind::TruncateChain, /*Count=*/-1);
  EXPECT_TRUE(FI.shouldFire(FaultKind::TruncateChain));
  FI.disarm(FaultKind::TruncateChain);
  EXPECT_FALSE(FI.shouldFire(FaultKind::TruncateChain));
  EXPECT_EQ(FI.firedCount(FaultKind::TruncateChain), 1u);
  FI.reset();
  EXPECT_EQ(FI.firedCount(FaultKind::TruncateChain), 0u);
}

TEST_F(FaultInjectorTest, ConfigureParsesSpecList) {
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("scale-drift,drop-galois-key:2:1"));
  EXPECT_TRUE(FI.shouldFire(FaultKind::ScaleDrift));
  EXPECT_FALSE(FI.shouldFire(FaultKind::ScaleDrift));
  EXPECT_FALSE(FI.shouldFire(FaultKind::DropGaloisKey)); // skipped
  EXPECT_TRUE(FI.shouldFire(FaultKind::DropGaloisKey));
  EXPECT_TRUE(FI.shouldFire(FaultKind::DropGaloisKey));
  EXPECT_FALSE(FI.shouldFire(FaultKind::DropGaloisKey));
}

TEST_F(FaultInjectorTest, ConfigureRejectsMalformedSpecs) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_FALSE(FI.configure("no-such-fault"));
  EXPECT_FALSE(FI.configure("scale-drift:banana"));
  EXPECT_FALSE(FI.configure("scale-drift:1:2:3"));
  // An empty spec is well-formed: it arms nothing.
  EXPECT_TRUE(FI.configure(""));
  EXPECT_FALSE(FI.enabled());
}

TEST_F(FaultInjectorTest, KindNamesRoundTrip) {
  EXPECT_STREQ(faultKindName(FaultKind::ScaleDrift), "scale-drift");
  EXPECT_STREQ(faultKindName(FaultKind::SlotCorrupt), "slot-corrupt");
  EXPECT_STREQ(faultKindName(FaultKind::TruncateChain), "truncate-chain");
  EXPECT_STREQ(faultKindName(FaultKind::DropGaloisKey), "drop-galois-key");
  EXPECT_STREQ(faultKindName(FaultKind::DropRelinKey), "drop-relin-key");
  EXPECT_STREQ(faultKindName(FaultKind::AllocFail), "alloc-fail");
  EXPECT_STREQ(faultKindName(FaultKind::BudgetExceeded),
               "budget-exceeded");
}

} // namespace
