//===----------------------------------------------------------------------===//
// Unit tests for ace::Status and ace::StatusOr.
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <gtest/gtest.h>

using namespace ace;

TEST(StatusTest, DefaultIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_TRUE(S.message().empty());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status S = Status::error("file.onnx: unknown operator 'Gelu'");
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "file.onnx: unknown operator 'Gelu'");
}

TEST(StatusTest, SuccessFactory) {
  EXPECT_TRUE(Status::success().ok());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> V(Status::error("boom"));
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.status().message(), "boom");
}

TEST(StatusOrTest, TakeMovesValue) {
  StatusOr<std::string> V(std::string("hello"));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V.take(), "hello");
}

TEST(StatusOrTest, ArrowAccess) {
  StatusOr<std::string> V(std::string("abc"));
  EXPECT_EQ(V->size(), 3u);
}

TEST(StatusTest, ErrorCodeFactories) {
  EXPECT_EQ(Status::success().code(), ErrorCode::Ok);
  EXPECT_EQ(Status::invalidArgument("x").code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(Status::levelMismatch("x").code(), ErrorCode::LevelMismatch);
  EXPECT_EQ(Status::scaleMismatch("x").code(), ErrorCode::ScaleMismatch);
  EXPECT_EQ(Status::keyMissing("x").code(), ErrorCode::KeyMissing);
  EXPECT_EQ(Status::depthExhausted("x").code(), ErrorCode::DepthExhausted);
  EXPECT_EQ(Status::resourceExhausted("x").code(),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(Status::internal("x").code(), ErrorCode::Internal);
  // The legacy untyped factory maps to Internal.
  EXPECT_EQ(Status::error("x").code(), ErrorCode::Internal);
}

TEST(StatusTest, ErrorCodeNames) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(errorCodeName(ErrorCode::LevelMismatch), "level-mismatch");
  EXPECT_STREQ(errorCodeName(ErrorCode::ScaleMismatch), "scale-mismatch");
  EXPECT_STREQ(errorCodeName(ErrorCode::KeyMissing), "key-missing");
  EXPECT_STREQ(errorCodeName(ErrorCode::DepthExhausted), "depth-exhausted");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

namespace {
Status failingHelper(ErrorCode Code) {
  ACE_RETURN_IF_ERROR(Status::error(Code, "inner failure"));
  return Status::internal("unreachable");
}

StatusOr<int> doubledOrError(StatusOr<int> In) {
  ACE_ASSIGN_OR_RETURN(int V, std::move(In));
  return 2 * V;
}
} // namespace

TEST(StatusTest, ReturnIfErrorPropagatesCodeAndMessage) {
  Status S = failingHelper(ErrorCode::KeyMissing);
  EXPECT_EQ(S.code(), ErrorCode::KeyMissing);
  EXPECT_EQ(S.message(), "inner failure");
  // A success Status passes through without returning.
  EXPECT_TRUE([] {
    ACE_RETURN_IF_ERROR(Status::success());
    return Status::success();
  }()
                  .ok());
}

TEST(StatusTest, AssignOrReturnUnwrapsAndPropagates) {
  auto Ok = doubledOrError(StatusOr<int>(21));
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);
  auto Err = doubledOrError(Status::depthExhausted("no primes left"));
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.status().code(), ErrorCode::DepthExhausted);
  EXPECT_EQ(Err.status().message(), "no primes left");
}

namespace {
/// Regression type for the old `T Value{}` StatusOr layout: no default
/// constructor, and instance counting to catch double-destroy.
struct NoDefault {
  explicit NoDefault(int X) : X(X) { ++Live; }
  NoDefault(const NoDefault &O) : X(O.X) { ++Live; }
  NoDefault(NoDefault &&O) noexcept : X(O.X) { ++Live; }
  ~NoDefault() { --Live; }
  int X;
  static int Live;
};
int NoDefault::Live = 0;
} // namespace

TEST(StatusOrTest, WorksWithoutDefaultConstructor) {
  {
    StatusOr<NoDefault> V(NoDefault(7));
    ASSERT_TRUE(V.ok());
    EXPECT_EQ(V->X, 7);
    StatusOr<NoDefault> Copy = V;
    EXPECT_EQ(Copy->X, 7);
    StatusOr<NoDefault> Moved = std::move(Copy);
    EXPECT_EQ(Moved->X, 7);
    StatusOr<NoDefault> Err(Status::invalidArgument("nope"));
    EXPECT_FALSE(Err.ok());
    Err = std::move(Moved); // error -> value assignment
    ASSERT_TRUE(Err.ok());
    EXPECT_EQ(Err->X, 7);
    V = Status::keyMissing("gone"); // value -> error assignment
    EXPECT_FALSE(V.ok());
    EXPECT_EQ(V.status().code(), ErrorCode::KeyMissing);
  }
  // Every constructed instance was destroyed exactly once.
  EXPECT_EQ(NoDefault::Live, 0);
}

TEST(StatusOrTest, ErrorKeepsCode) {
  StatusOr<std::string> V(Status::scaleMismatch("1.0 vs 2.0"));
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.status().code(), ErrorCode::ScaleMismatch);
}

#ifndef NDEBUG
TEST(StatusOrDeathTest, DereferencingErrorAsserts) {
  StatusOr<int> V(Status::internal("bad"));
  EXPECT_DEATH({ (void)*V; }, "");
}

TEST(StatusDeathTest, OkCodeWithErrorFactoryAsserts) {
  EXPECT_DEATH({ (void)Status::error(ErrorCode::Ok, "not an error"); }, "");
}
#endif
