//===----------------------------------------------------------------------===//
// Unit tests for ace::Status and ace::StatusOr.
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <gtest/gtest.h>

using namespace ace;

TEST(StatusTest, DefaultIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_TRUE(S.message().empty());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status S = Status::error("file.onnx: unknown operator 'Gelu'");
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "file.onnx: unknown operator 'Gelu'");
}

TEST(StatusTest, SuccessFactory) {
  EXPECT_TRUE(Status::success().ok());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> V(Status::error("boom"));
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.status().message(), "boom");
}

TEST(StatusOrTest, TakeMovesValue) {
  StatusOr<std::string> V(std::string("hello"));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V.take(), "hello");
}

TEST(StatusOrTest, ArrowAccess) {
  StatusOr<std::string> V(std::string("abc"));
  EXPECT_EQ(V->size(), 3u);
}
