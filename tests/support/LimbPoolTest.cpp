//===----------------------------------------------------------------------===//
// Limb pool tests: free-list recycling semantics, bypass mode, provenance
// across mode flips, trim accounting against the resource governor, and
// the LimbStorage value semantics RnsPoly relies on.
//===----------------------------------------------------------------------===//

#include "support/LimbPool.h"
#include "support/ResourceGovernor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace ace;

namespace {

/// Restores process-global pool state around each test: the enabled
/// flag, parked blocks (trimmed away), and the counters.
struct LimbPoolTest : ::testing::Test {
  LimbPoolTest() : SavedEnabled(LimbPool::instance().enabled()) {
    LimbPool::instance().setEnabled(true);
    LimbPool::instance().trim();
    LimbPool::instance().resetCounters();
  }
  ~LimbPoolTest() override {
    LimbPool::instance().trim();
    LimbPool::instance().setEnabled(SavedEnabled);
    LimbPool::instance().resetCounters();
  }
  bool SavedEnabled;
};

TEST_F(LimbPoolTest, ReleaseThenAcquireHitsTheFreeList) {
  LimbPool &Pool = LimbPool::instance();
  bool FromPool = false;
  uint64_t *A = Pool.acquire(256, FromPool);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(FromPool);
  EXPECT_EQ(Pool.stats().Misses, 1u);
  EXPECT_EQ(Pool.stats().InUseBytes, 256 * sizeof(uint64_t));

  Pool.release(A, 256, FromPool);
  EXPECT_EQ(Pool.stats().FreeBytes, 256 * sizeof(uint64_t));
  EXPECT_EQ(Pool.stats().InUseBytes, 0u);

  uint64_t *B = Pool.acquire(256, FromPool);
  EXPECT_EQ(B, A); // exact-size bin returns the parked block
  EXPECT_EQ(Pool.stats().Hits, 1u);
  EXPECT_EQ(Pool.stats().Misses, 1u);
  Pool.release(B, 256, FromPool);
}

TEST_F(LimbPoolTest, DifferentSizesUseDifferentBins) {
  LimbPool &Pool = LimbPool::instance();
  bool F1 = false, F2 = false;
  uint64_t *A = Pool.acquire(128, F1);
  Pool.release(A, 128, F1);
  // A parked 128-word block must not satisfy a 256-word acquire.
  uint64_t *B = Pool.acquire(256, F2);
  EXPECT_EQ(Pool.stats().Hits, 0u);
  EXPECT_EQ(Pool.stats().Misses, 2u);
  Pool.release(B, 256, F2);
}

TEST_F(LimbPoolTest, BypassModeCountsMissesButParksNothing) {
  LimbPool &Pool = LimbPool::instance();
  Pool.setEnabled(false);
  bool FromPool = true;
  uint64_t *A = Pool.acquire(64, FromPool);
  ASSERT_NE(A, nullptr);
  EXPECT_FALSE(FromPool); // heap provenance
  // Bypass still counts the heap allocation, so pool-on and pool-off
  // bench legs read the same counter.
  EXPECT_EQ(Pool.stats().Misses, 1u);
  Pool.release(A, 64, FromPool);
  EXPECT_EQ(Pool.stats().FreeBytes, 0u); // went back to the heap
}

TEST_F(LimbPoolTest, ProvenanceSurvivesModeFlip) {
  LimbPool &Pool = LimbPool::instance();
  bool PooledProv = false, HeapProv = false;
  uint64_t *Pooled = Pool.acquire(32, PooledProv);
  Pool.setEnabled(false);
  uint64_t *Heap = Pool.acquire(32, HeapProv);
  EXPECT_TRUE(PooledProv);
  EXPECT_FALSE(HeapProv);

  // Release both with the pool disabled: the pooled block still returns
  // to its bin (its bytes stay charged), the heap block to the heap.
  Pool.release(Pooled, 32, PooledProv);
  Pool.release(Heap, 32, HeapProv);
  EXPECT_EQ(Pool.stats().FreeBytes, 32 * sizeof(uint64_t));
  EXPECT_EQ(Pool.stats().InUseBytes, 0u);
}

TEST_F(LimbPoolTest, TrimReleasesParkedBlocksAndGovernorCharge) {
  LimbPool &Pool = LimbPool::instance();
  ResourceGovernor &Gov = ResourceGovernor::instance();
  size_t ChargedBefore =
      Gov.stats().ChargedBytes[static_cast<size_t>(MemCategory::LimbPool)];
  bool FromPool = false;
  uint64_t *A = Pool.acquire(512, FromPool);
  size_t ChargedAfter =
      Gov.stats().ChargedBytes[static_cast<size_t>(MemCategory::LimbPool)];
  EXPECT_EQ(ChargedAfter - ChargedBefore, 512 * sizeof(uint64_t));

  Pool.release(A, 512, FromPool);
  size_t Freed = Pool.trim();
  EXPECT_EQ(Freed, 512 * sizeof(uint64_t));
  EXPECT_EQ(Pool.stats().FreeBytes, 0u);
  EXPECT_GE(Pool.stats().Trims, 1u);
  EXPECT_EQ(
      Gov.stats().ChargedBytes[static_cast<size_t>(MemCategory::LimbPool)],
      ChargedBefore);
}

TEST_F(LimbPoolTest, LimbStorageValueSemantics) {
  LimbStorage S;
  S.assignZero(100);
  ASSERT_EQ(S.size(), 100u);
  for (size_t I = 0; I < 100; ++I)
    EXPECT_EQ(S.data()[I], 0u);
  for (size_t I = 0; I < 100; ++I)
    S.data()[I] = I;

  LimbStorage Copy(S);
  ASSERT_EQ(Copy.size(), 100u);
  EXPECT_NE(Copy.data(), S.data());
  EXPECT_EQ(0, std::memcmp(Copy.data(), S.data(), 100 * sizeof(uint64_t)));

  LimbStorage Moved(std::move(Copy));
  EXPECT_EQ(Copy.size(), 0u);
  EXPECT_EQ(Copy.data(), nullptr);
  ASSERT_EQ(Moved.size(), 100u);
  EXPECT_EQ(Moved.data()[42], 42u);

  Moved.shrinkTo(10);
  EXPECT_EQ(Moved.size(), 10u);
  EXPECT_EQ(Moved.data()[9], 9u); // shrink keeps the prefix

  // Re-zeroing within capacity reuses the block in place.
  const uint64_t *Block = Moved.data();
  Moved.assignZero(100);
  EXPECT_EQ(Moved.data(), Block);
  EXPECT_EQ(Moved.data()[42], 0u);

  LimbStorage Assigned;
  Assigned = S;
  EXPECT_EQ(0, std::memcmp(Assigned.data(), S.data(),
                           100 * sizeof(uint64_t)));
  Assigned = std::move(Moved);
  EXPECT_EQ(Assigned.size(), 100u);
  EXPECT_EQ(Moved.data(), nullptr);
}

TEST_F(LimbPoolTest, ConcurrentAcquireReleaseKeepsAccountingConsistent) {
  LimbPool &Pool = LimbPool::instance();
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&Pool, T] {
      size_t Words = 64 + 32 * static_cast<size_t>(T % 2);
      for (int I = 0; I < 200; ++I) {
        bool FromPool = false;
        uint64_t *P = Pool.acquire(Words, FromPool);
        P[0] = static_cast<uint64_t>(I);
        Pool.release(P, Words, FromPool);
      }
    });
  for (auto &T : Threads)
    T.join();
  LimbPoolStats S = Pool.stats();
  EXPECT_EQ(S.Hits + S.Misses, 800u);
  EXPECT_EQ(S.InUseBytes, 0u); // everything released
}

} // namespace
