//===----------------------------------------------------------------------===//
// Unit and statistical tests for the deterministic RNG and its samplers.
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ace;

TEST(RngTest, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next64(), B.next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next64() == B.next64();
  EXPECT_LT(Same, 2);
}

TEST(RngTest, UniformBound) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng R(7);
  std::vector<int> Hits(8, 0);
  for (int I = 0; I < 8000; ++I)
    ++Hits[R.uniform(8)];
  for (int H : Hits)
    EXPECT_GT(H, 700); // Expected 1000 each; loose 30% tolerance.
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniformReal();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng R(13);
  double Sum = 0, SumSq = 0;
  const int Count = 100000;
  for (int I = 0; I < Count; ++I) {
    double G = R.gaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / Count, 0.0, 0.02);
  EXPECT_NEAR(SumSq / Count, 1.0, 0.03);
}

TEST(RngTest, CbdNoiseStdDev) {
  // The RLWE error distribution must have sigma close to 3.2.
  Rng R(17);
  double SumSq = 0, Sum = 0;
  const int Count = 100000;
  for (int I = 0; I < Count; ++I) {
    int32_t V = R.noiseCbd();
    Sum += V;
    SumSq += static_cast<double>(V) * V;
  }
  double Mean = Sum / Count;
  double Sigma = std::sqrt(SumSq / Count - Mean * Mean);
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Sigma, 3.24, 0.1);
}

TEST(RngTest, TernaryDistribution) {
  Rng R(19);
  int Counts[3] = {0, 0, 0}; // -1, 0, +1
  const int Total = 40000;
  for (int I = 0; I < Total; ++I)
    ++Counts[R.ternary() + 1];
  EXPECT_NEAR(Counts[0], Total / 4, Total / 40);
  EXPECT_NEAR(Counts[1], Total / 2, Total / 40);
  EXPECT_NEAR(Counts[2], Total / 4, Total / 40);
}

TEST(RngTest, UniformVector) {
  Rng R(23);
  std::vector<uint64_t> Out;
  R.uniformVector(997, 512, Out);
  ASSERT_EQ(Out.size(), 512u);
  for (uint64_t V : Out)
    EXPECT_LT(V, 997u);
}
