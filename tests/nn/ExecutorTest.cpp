//===----------------------------------------------------------------------===//
// Cleartext executor tests: operator semantics against hand-computed
// values, shape inference, calibration, and model-zoo properties.
//===----------------------------------------------------------------------===//

#include "nn/Executor.h"
#include "nn/ModelZoo.h"

#include <gtest/gtest.h>

using namespace ace;
using namespace ace::nn;
using namespace ace::onnx;

namespace {

Graph convGraph(std::vector<float> W, std::vector<int64_t> WShape,
                std::vector<int64_t> Strides, std::vector<int64_t> Pads) {
  Graph G;
  G.Inputs.push_back({"x", {1, WShape[1], 3, 3}});
  TensorData WT;
  WT.Shape = WShape;
  WT.Values = std::move(W);
  G.Initializers.emplace("w", std::move(WT));
  Node N;
  N.Kind = OpKind::OK_Conv;
  N.Name = "c";
  N.Inputs = {"x", "w"};
  N.Outputs = {"y"};
  N.Attributes["strides"] = Attribute{Strides, {}};
  N.Attributes["pads"] = Attribute{Pads, {}};
  G.Nodes.push_back(std::move(N));
  G.Outputs.push_back({"y", {}});
  return G;
}

TEST(ExecutorTest, IdentityConv) {
  // 1x1 kernel of weight 1: output equals input.
  Graph G = convGraph({1.0f}, {1, 1, 1, 1}, {1, 1}, {0, 0, 0, 0});
  Tensor X;
  X.Shape = {1, 1, 3, 3};
  X.Values = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto Y = executeSingle(G, X);
  ASSERT_TRUE(Y.ok());
  EXPECT_EQ(Y->Shape, (std::vector<int64_t>{1, 1, 3, 3}));
  for (size_t I = 0; I < 9; ++I)
    EXPECT_FLOAT_EQ(Y->Values[I], X.Values[I]);
}

TEST(ExecutorTest, SamePaddedAveragingConv) {
  // 3x3 all-ones kernel with "same" padding: center output = sum of all.
  Graph G = convGraph(std::vector<float>(9, 1.0f), {1, 1, 3, 3}, {1, 1},
                      {1, 1, 1, 1});
  Tensor X;
  X.Shape = {1, 1, 3, 3};
  X.Values = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto Y = executeSingle(G, X);
  ASSERT_TRUE(Y.ok());
  EXPECT_FLOAT_EQ(Y->Values[4], 45.0f); // center sees everything
  EXPECT_FLOAT_EQ(Y->Values[0], 1 + 2 + 4 + 5); // corner
}

TEST(ExecutorTest, StridedConvHalvesSpatialDims) {
  Graph G = convGraph({1.0f}, {1, 1, 1, 1}, {2, 2}, {0, 0, 0, 0});
  Tensor X;
  X.Shape = {1, 1, 3, 3};
  X.Values = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto Y = executeSingle(G, X);
  ASSERT_TRUE(Y.ok());
  EXPECT_EQ(Y->Shape, (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(Y->Values[0], 1);
  EXPECT_FLOAT_EQ(Y->Values[1], 3);
  EXPECT_FLOAT_EQ(Y->Values[2], 7);
  EXPECT_FLOAT_EQ(Y->Values[3], 9);
}

TEST(ExecutorTest, GemmMatchesHandComputation) {
  Graph G;
  G.Inputs.push_back({"x", {1, 3}});
  TensorData W;
  W.Shape = {2, 3};
  W.Values = {1, 2, 3, 4, 5, 6};
  G.Initializers.emplace("w", std::move(W));
  TensorData B;
  B.Shape = {2};
  B.Values = {0.5f, -0.5f};
  G.Initializers.emplace("b", std::move(B));
  Node N;
  N.Kind = OpKind::OK_Gemm;
  N.Inputs = {"x", "w", "b"};
  N.Outputs = {"y"};
  N.Attributes["transB"] = Attribute{{1}, {}};
  G.Nodes.push_back(std::move(N));
  G.Outputs.push_back({"y", {}});

  Tensor X;
  X.Shape = {1, 3};
  X.Values = {1, 1, 1};
  auto Y = executeSingle(G, X);
  ASSERT_TRUE(Y.ok());
  EXPECT_FLOAT_EQ(Y->Values[0], 6.5f);
  EXPECT_FLOAT_EQ(Y->Values[1], 14.5f);
}

TEST(ExecutorTest, GlobalAveragePool) {
  Graph G;
  G.Inputs.push_back({"x", {1, 2, 2, 2}});
  Node N;
  N.Kind = OpKind::OK_GlobalAveragePool;
  N.Inputs = {"x"};
  N.Outputs = {"y"};
  G.Nodes.push_back(std::move(N));
  G.Outputs.push_back({"y", {}});
  Tensor X;
  X.Shape = {1, 2, 2, 2};
  X.Values = {1, 2, 3, 4, 10, 20, 30, 40};
  auto Y = executeSingle(G, X);
  ASSERT_TRUE(Y.ok());
  EXPECT_FLOAT_EQ(Y->Values[0], 2.5f);
  EXPECT_FLOAT_EQ(Y->Values[1], 25.0f);
}

TEST(ExecutorTest, ShapeInference) {
  nn::NanoResNetSpec Spec;
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  Dataset Data = makeSyntheticDataset({1, 2, 4, 4}, 4, 4, 0.1, 5);
  auto MOr = buildNanoResNet(Spec, Data, 7);
  ASSERT_TRUE(MOr.ok()) << MOr.status().message();
  Model M = MOr.take();
  auto Shapes = inferShapes(M.MainGraph);
  ASSERT_TRUE(Shapes.ok());
  EXPECT_EQ(Shapes->at("logits"), (std::vector<int64_t>{1, 4}));
  // Stage 2 halves the spatial dims.
  bool SawDownsampled = false;
  for (const auto &[Name, S] : *Shapes)
    if (S.size() == 4 && S[2] == 2 && S[1] == 4)
      SawDownsampled = true;
  EXPECT_TRUE(SawDownsampled);
}

TEST(ExecutorTest, ActivationBoundsArePositive) {
  Model M = buildMlp({8, 6, 4}, 3);
  Tensor X;
  X.Shape = {1, 8};
  X.Values.assign(8, 0.5f);
  auto Bounds = activationBounds(M.MainGraph, X);
  ASSERT_TRUE(Bounds.ok());
  for (const auto &[Name, B] : *Bounds)
    EXPECT_GE(B, 0.0);
  EXPECT_GT(Bounds->size(), 2u);
}

TEST(ExecutorTest, UndefinedInputDiagnostic) {
  Graph G;
  G.Inputs.push_back({"x", {1, 4}});
  Node N;
  N.Kind = OpKind::OK_Relu;
  N.Name = "r";
  N.Inputs = {"missing"};
  N.Outputs = {"y"};
  G.Nodes.push_back(std::move(N));
  G.Outputs.push_back({"y", {}});
  Tensor X;
  X.Shape = {1, 4};
  X.Values.assign(4, 0.0f);
  auto Y = executeSingle(G, X);
  EXPECT_FALSE(Y.ok());
  EXPECT_NE(Y.status().message().find("missing"), std::string::npos);
}

TEST(ModelZooTest, DatasetIsLabeledAndBounded) {
  Dataset D = makeSyntheticDataset({1, 3, 4, 4}, 5, 40, 0.1, 9);
  EXPECT_EQ(D.Images.size(), 40u);
  EXPECT_EQ(D.Prototypes.size(), 5u);
  for (size_t I = 0; I < D.Images.size(); ++I) {
    EXPECT_GE(D.Labels[I], 0);
    EXPECT_LT(D.Labels[I], 5);
    for (float V : D.Images[I].Values) {
      EXPECT_GE(V, -1.0f);
      EXPECT_LE(V, 1.0f);
    }
  }
}

TEST(ModelZooTest, PrototypeReadoutSeparatesClasses) {
  nn::NanoResNetSpec Spec;
  Spec.BlocksPerStage = 1;
  Spec.Channels = {2, 4};
  Spec.InputHW = 4;
  Spec.InputChannels = 2;
  Spec.Classes = 4;
  Dataset Data = makeSyntheticDataset({1, 2, 4, 4}, 4, 24, 0.08, 5);
  auto MOr = buildNanoResNet(Spec, Data, 7);
  ASSERT_TRUE(MOr.ok()) << MOr.status().message();
  Model M = MOr.take();
  // The constructed readout must classify well above chance (25%).
  EXPECT_GE(cleartextAccuracy(M.MainGraph, Data), 0.7);
}

TEST(ModelZooTest, PaperSpecsProgressInDepth) {
  auto Specs = paperModelSpecs();
  ASSERT_EQ(Specs.size(), 6u);
  EXPECT_LT(Specs[0].BlocksPerStage, Specs[5].BlocksPerStage);
  EXPECT_GT(Specs[2].Classes, Specs[1].Classes); // the CIFAR-100 stand-in
}

} // namespace
